// CUDA kernels for the BRO formats — Algorithm 1 of the paper, transcribed
// against the wire formats defined in docs/FORMATS.md. Not compiled in the
// default (GPU-less) build; see cuda/README.md.
#include <cstdint>

#include "bro_kernels.cuh"

namespace bro::cuda {

namespace {

constexpr unsigned kFullMask = 0xffffffffu;

} // namespace

// One block per slice, one thread per slice row (blockDim.x == slice height
// h). Warp-uniform control flow: bit_alloc is identical across the block, so
// every thread's remaining-bit counter rb evolves identically and the symbol
// loads below are taken (or skipped) by all threads together.
__global__ void bro_ell_spmv_kernel(
    const std::uint32_t* __restrict__ comp_str, // all slices, concatenated
    const std::uint64_t* __restrict__ slice_sym_off, // per-slice symbol base
    const std::uint8_t* __restrict__ bit_alloc,      // concatenated widths
    const std::uint64_t* __restrict__ bit_alloc_off, // per-slice base
    const int* __restrict__ num_col,                 // l_s per slice
    const double* __restrict__ vals,                 // column-major m x k
    const double* __restrict__ x, double* __restrict__ y, int rows) {
  const int slice = static_cast<int>(blockIdx.x);
  const int t = static_cast<int>(threadIdx.x);
  const int row = slice * static_cast<int>(blockDim.x) + t;
  if (row >= rows) return;

  const std::uint64_t sym_base = slice_sym_off[slice];
  const std::uint8_t* ba = bit_alloc + bit_alloc_off[slice];
  const int l = num_col[slice];
  const int h = static_cast<int>(blockDim.x);

  // Algorithm 1 state. The buffer is kept left-aligned in a 64-bit register
  // so a 32-bit width never shifts by >= 64.
  std::uint64_t sym = 0;
  int rb = 0;
  int loads = 0;
  int col = -1;
  double sum = 0.0;

  for (int c = 0; c < l; ++c) {
    const int b = ba[c];
    std::uint32_t decoded;
    if (b <= rb) {
      decoded = static_cast<std::uint32_t>(sym >> (64 - b));
      sym <<= b;
      rb -= b;
    } else {
      decoded = rb > 0 ? static_cast<std::uint32_t>(sym >> (64 - rb)) : 0u;
      const int low = b - rb;
      const std::uint64_t fresh =
          static_cast<std::uint64_t>(
              __ldg(comp_str + sym_base +
                    static_cast<std::uint64_t>(loads) * h + t))
          << 32; // left-align the 32-bit symbol
      ++loads;
      decoded = (decoded << low) |
                static_cast<std::uint32_t>(fresh >> (64 - low));
      sym = fresh << low;
      rb = 32 - low;
    }
    if (decoded != 0u) { // 0 = padding sentinel
      col += static_cast<int>(decoded);
      sum += vals[static_cast<std::size_t>(c) * rows + row] * __ldg(x + col);
    }
  }
  y[row] = sum;
}

// Bell & Garland ELLPACK baseline: thread per row, column-major arrays.
__global__ void ell_spmv_kernel(const int* __restrict__ col_idx,
                                const double* __restrict__ vals,
                                const double* __restrict__ x,
                                double* __restrict__ y, int rows, int width) {
  const int row = static_cast<int>(blockIdx.x * blockDim.x + threadIdx.x);
  if (row >= rows) return;
  double sum = 0.0;
  for (int j = 0; j < width; ++j) {
    const int c = col_idx[static_cast<std::size_t>(j) * rows + row];
    if (c >= 0) sum += vals[static_cast<std::size_t>(j) * rows + row] *
                       __ldg(x + c);
  }
  y[row] = sum;
}

// BRO-COO: one warp per interval (fixed bit width per interval); the
// interval's lane-j entries are base + c*32 + j. Products are combined with
// a warp segmented reduction keyed on the decoded row index; boundary sums
// are added to y with atomics (the per-warp carry pass of the paper's
// implementation is folded into atomics here for simplicity).
__global__ void bro_coo_spmv_kernel(
    const std::uint32_t* __restrict__ comp_str,
    const std::uint64_t* __restrict__ interval_sym_off,
    const int* __restrict__ interval_bits,
    const int* __restrict__ interval_start_row,
    const int* __restrict__ col_idx, const double* __restrict__ vals,
    const double* __restrict__ x, double* __restrict__ y,
    long long padded_nnz, int interval_cols) {
  const int warp_in_block = static_cast<int>(threadIdx.x) >> 5;
  const int lane = static_cast<int>(threadIdx.x) & 31;
  const long long interval =
      static_cast<long long>(blockIdx.x) * (blockDim.x >> 5) + warp_in_block;
  const long long base = interval * 32ll * interval_cols;
  if (base >= padded_nnz) return;

  const int b = interval_bits[interval];
  const std::uint64_t sym_base = interval_sym_off[interval];
  std::uint64_t sym = 0;
  int rb = 0;
  int loads = 0;
  int row = interval_start_row[interval];

  for (int c = 0; c < interval_cols; ++c) {
    std::uint32_t d;
    if (b <= rb) {
      d = static_cast<std::uint32_t>(sym >> (64 - b));
      sym <<= b;
      rb -= b;
    } else {
      d = rb > 0 ? static_cast<std::uint32_t>(sym >> (64 - rb)) : 0u;
      const int low = b - rb;
      const std::uint64_t fresh =
          static_cast<std::uint64_t>(
              __ldg(comp_str + sym_base +
                    static_cast<std::uint64_t>(loads) * 32 + lane))
          << 32;
      ++loads;
      d = (d << low) | static_cast<std::uint32_t>(fresh >> (64 - low));
      sym = fresh << low;
      rb = 32 - low;
    }
    row += static_cast<int>(d);

    const long long e = base + static_cast<long long>(c) * 32 + lane;
    const double prod = vals[e] * __ldg(x + col_idx[e]);

    // Head-segmented inclusive sum over the warp: lane l accumulates
    // products from lanes <= l that share its row.
    double acc = prod;
    for (int off = 1; off < 32; off <<= 1) {
      const double up = __shfl_up_sync(kFullMask, acc, off);
      const int up_row = __shfl_up_sync(kFullMask, row, off);
      if (lane >= off && up_row == row) acc += up;
    }
    const int next_row = __shfl_down_sync(kFullMask, row, 1);
    const bool segment_end = (lane == 31) || (next_row != row);
    if (segment_end) atomicAdd(y + row, acc);
  }
}

} // namespace bro::cuda
