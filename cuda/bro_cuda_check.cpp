// Device-vs-host cross-check for the CUDA backend (built only with
// -DBRO_ENABLE_CUDA=ON on a machine with the CUDA toolkit and a GPU).
//
// Compresses a generated matrix on the host with the library's BRO-ELL
// compressor, uploads the streams in the documented layout, runs the device
// kernels and compares against the host SpMV.
#include <cuda_runtime.h>

#include <cstdio>
#include <vector>

#include "bro_kernels.cuh"
#include "core/bro_ell.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace {

#define CUDA_OK(call)                                                    \
  do {                                                                   \
    const cudaError_t err_ = (call);                                     \
    if (err_ != cudaSuccess) {                                           \
      std::fprintf(stderr, "%s:%d: %s\n", __FILE__, __LINE__,            \
                   cudaGetErrorString(err_));                            \
      return 1;                                                          \
    }                                                                    \
  } while (0)

template <typename T>
T* upload(const std::vector<T>& host) {
  T* dev = nullptr;
  cudaMalloc(&dev, host.size() * sizeof(T));
  cudaMemcpy(dev, host.data(), host.size() * sizeof(T),
             cudaMemcpyHostToDevice);
  return dev;
}

} // namespace

int main() {
  using namespace bro;

  const sparse::Csr csr = sparse::generate_poisson2d(512, 512);
  const sparse::Ell ell = sparse::csr_to_ell(csr);
  core::BroEllOptions opts; // h = 256, sym_len = 32
  const core::BroEll bro = core::BroEll::compress(ell, opts);

  // Flatten the slice streams into the kernel's concatenated layout.
  std::vector<std::uint32_t> comp_str;
  std::vector<std::uint64_t> slice_sym_off, bit_alloc_off;
  std::vector<std::uint8_t> bit_alloc;
  std::vector<int> num_col;
  for (const auto& s : bro.slices()) {
    slice_sym_off.push_back(comp_str.size());
    for (std::size_t i = 0; i < s.stream.total_symbols(); ++i)
      comp_str.push_back(static_cast<std::uint32_t>(s.stream[i]));
    bit_alloc_off.push_back(bit_alloc.size());
    bit_alloc.insert(bit_alloc.end(), s.bit_alloc.begin(), s.bit_alloc.end());
    num_col.push_back(s.num_col);
  }

  Rng rng(7);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  std::vector<value_t> y_host(static_cast<std::size_t>(csr.rows));
  bro.spmv(x, y_host);

  // Device buffers.
  auto* d_str = upload(comp_str);
  auto* d_soff = upload(slice_sym_off);
  auto* d_ba = upload(bit_alloc);
  auto* d_boff = upload(bit_alloc_off);
  auto* d_ncol = upload(num_col);
  auto* d_vals = upload(bro.vals());
  auto* d_x = upload(x);
  double* d_y = nullptr;
  CUDA_OK(cudaMalloc(&d_y, y_host.size() * sizeof(double)));

  bro::cuda::bro_ell_spmv_kernel<<<static_cast<unsigned>(bro.slices().size()),
                                   opts.slice_height>>>(
      d_str, d_soff, d_ba, d_boff, d_ncol, d_vals, d_x, d_y, csr.rows);
  CUDA_OK(cudaGetLastError());
  CUDA_OK(cudaDeviceSynchronize());

  std::vector<value_t> y_dev(y_host.size());
  CUDA_OK(cudaMemcpy(y_dev.data(), d_y, y_dev.size() * sizeof(double),
                     cudaMemcpyDeviceToHost));

  double max_err = 0;
  for (std::size_t i = 0; i < y_host.size(); ++i)
    max_err = std::max(max_err, std::abs(y_dev[i] - y_host[i]));
  std::printf("BRO-ELL device vs host: max |diff| = %.3e over %zu rows\n",
              max_err, y_host.size());
  return max_err < 1e-10 ? 0 : 1;
}
