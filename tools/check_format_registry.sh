#!/bin/sh
# Drives the brospmv CLI across every registered format:
#   1. `tune` must rank formats on a suite matrix,
#   2. `spmv --format F` must run for each name printed by `formats`,
#   3. an unknown --format must be a hard error listing registered names.
# Usage: check_format_registry.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_format_registry.sh /path/to/brospmv}
MATRIX=cant   # ELL-viable, so the whole ELLPACK family is applicable
SCALE=0.03125

echo "== tune =="
"$BROSPMV" tune "$MATRIX" --scale "$SCALE"

FORMATS=$("$BROSPMV" formats)
[ -n "$FORMATS" ] || { echo "FAIL: 'brospmv formats' printed nothing"; exit 1; }

for f in $FORMATS; do
  echo "== spmv --format $f =="
  "$BROSPMV" spmv "$MATRIX" --scale "$SCALE" --format "$f"
done

echo "== unknown format must fail =="
if "$BROSPMV" spmv "$MATRIX" --scale "$SCALE" --format NO-SUCH-FORMAT \
    2>err.txt; then
  echo "FAIL: unknown --format was accepted"
  exit 1
fi
grep -q "unknown --format" err.txt
grep -q "BRO-HYB" err.txt   # the error must list registered names
rm -f err.txt

echo "check_format_registry: OK ($(echo "$FORMATS" | wc -l) formats)"
