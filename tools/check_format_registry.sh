#!/bin/sh
# Drives the brospmv CLI across every registered format:
#   1. `tune` must rank formats on a suite matrix,
#   2. `spmv --format F` must run for each name printed by `formats`,
#   3. every format with a serialized form must round-trip
#      `compress` -> `spmv <file.bro>` with the file's own tag driving
#      format selection (no --format on the reading side),
#   4. an unknown --format must be a hard error listing registered names.
# Usage: check_format_registry.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_format_registry.sh /path/to/brospmv}
MATRIX=cant   # ELL-viable, so the whole ELLPACK family is applicable
SCALE=0.03125

echo "== tune =="
"$BROSPMV" tune "$MATRIX" --scale "$SCALE"

FORMATS=$("$BROSPMV" formats)
[ -n "$FORMATS" ] || { echo "FAIL: 'brospmv formats' printed nothing"; exit 1; }

for f in $FORMATS; do
  echo "== spmv --format $f =="
  "$BROSPMV" spmv "$MATRIX" --scale "$SCALE" --format "$f"
done

echo "== compress -> spmv round-trip for every serializable format =="
ROUND_TRIPS=0
for f in $FORMATS; do
  if "$BROSPMV" compress "$MATRIX" rt_fmt.bro --scale "$SCALE" \
      --format "$f" 2>rt_err.txt; then
    "$BROSPMV" spmv rt_fmt.bro >rt_out.txt
    # The reader must identify the format from the file tag alone.
    grep -q "$f (from file)" rt_out.txt || {
      echo "FAIL: spmv rt_fmt.bro did not report '$f (from file)'"
      cat rt_out.txt
      exit 1
    }
    echo "   $f round-tripped"
    ROUND_TRIPS=$((ROUND_TRIPS + 1))
  else
    # Only simulator-only formats (no serialized form) may skip.
    grep -q "no serialized form" rt_err.txt || {
      echo "FAIL: compress --format $f failed unexpectedly"
      cat rt_err.txt
      exit 1
    }
    echo "   $f has no serialized form (skipped)"
  fi
done
rm -f rt_fmt.bro rt_err.txt rt_out.txt
[ "$ROUND_TRIPS" -ge 6 ] || {
  echo "FAIL: only $ROUND_TRIPS formats round-tripped (expected >= 6)"
  exit 1
}

echo "== unknown format must fail =="
if "$BROSPMV" spmv "$MATRIX" --scale "$SCALE" --format NO-SUCH-FORMAT \
    2>err.txt; then
  echo "FAIL: unknown --format was accepted"
  exit 1
fi
grep -q "unknown --format" err.txt
grep -q "BRO-HYB" err.txt   # the error must list registered names
rm -f err.txt

echo "check_format_registry: OK ($(echo "$FORMATS" | wc -l) formats)"
