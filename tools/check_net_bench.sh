#!/bin/sh
# Loopback smoke of the network front-end through the CLI: start a `serve`
# daemon on an ephemeral port, drive it with `net-bench` (which uploads a
# working set, spot-checks wire answers bitwise against an in-process
# server, and reconciles client-side rejection counts with STATS), then
# shut it down gracefully with DRAIN and check both sides' exits. Also
# pins the --slo-p99-ms gate (generous budget passes, impossible budget
# fails) in both net-bench and serve-bench, and the throttled-status path
# against a rate-limited daemon.
# Usage: check_net_bench.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_net_bench.sh /path/to/brospmv}

start_daemon() { # start_daemon <log> [extra serve args...]
  log=$1
  shift
  rm -f port.txt
  "$BROSPMV" serve --port 0 --port-file port.txt --threads 2 "$@" \
      >"$log" 2>&1 &
  SERVE_PID=$!
  trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
}

stop_daemon() { # graceful DRAIN already sent by net-bench --drain
  wait $SERVE_PID
  trap - EXIT
}

echo "== serve + net-bench loopback =="
start_daemon serve.log
"$BROSPMV" net-bench --port-file port.txt --clients 3 --requests 50 \
    --matrices 2 --scale 0.02 --seed 2013 --slo-p99-ms 60000 \
    --drain >bench.txt
cat bench.txt
grep -q "served    150 / 150 requests" bench.txt
grep -q "verify    wire == in-process" bench.txt
grep -q "reconcile OK" bench.txt
grep -q "SLO OK" bench.txt
stop_daemon
cat serve.log
grep -q "drained: served" serve.log
grep -q " 0 protocol errors" serve.log

echo "== net-bench SLO gate must fail on an impossible budget =="
start_daemon serve2.log
if "$BROSPMV" net-bench --port-file port.txt --clients 2 --requests 30 \
    --matrices 1 --scale 0.02 --seed 7 --slo-p99-ms 0.000001 \
    --no-verify --drain >slo.txt 2>&1; then
  echo "FAIL: impossible SLO budget passed"
  exit 1
fi
grep -q "SLO FAIL" slo.txt
stop_daemon

echo "== throttled rejections retry, reconcile and still serve all =="
start_daemon serve3.log --admit-rate 200 --admit-burst 1
"$BROSPMV" net-bench --port-file port.txt --clients 2 --requests 40 \
    --matrices 1 --scale 0.02 --seed 13 --no-verify --drain >thr.txt
cat thr.txt
grep -q "served    80 / 80 requests" thr.txt
grep -q "reconcile OK" thr.txt
stop_daemon

echo "== serve-bench --slo-p99-ms gate =="
"$BROSPMV" serve-bench --threads 2 --clients 2 --requests 24 --matrices 1 \
    --scale 0.02 --seed 17 --slo-p99-ms 60000 >sb.txt
grep -q "SLO OK" sb.txt
if "$BROSPMV" serve-bench --threads 2 --clients 2 --requests 24 --matrices 1 \
    --scale 0.02 --seed 17 --slo-p99-ms 0.000001 >sb.txt 2>&1; then
  echo "FAIL: impossible serve-bench SLO budget passed"
  exit 1
fi
grep -q "SLO FAIL" sb.txt

rm -f port.txt serve.log serve2.log serve3.log bench.txt slo.txt thr.txt sb.txt
echo "check_net_bench: OK"
