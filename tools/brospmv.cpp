// brospmv — command-line front end to the library.
//
//   brospmv info <matrix>                     matrix statistics
//   brospmv formats                           list registered formats
//   brospmv compress <matrix> <out.bro>       offline compression (--format)
//   brospmv spmv <matrix|.bro> [--format F]   y = A*1, checksum + timing
//   brospmv tune <matrix> [--device D]        simulated format ranking
//   brospmv bench <matrix> [--device D]       per-format simulated GFlop/s
//   brospmv fuzz [--rounds N] [--seed S]      differential fuzz all formats
//
// <matrix> is a Matrix Market file, a named suite matrix (with optional
// --scale, default 0.125), or a .bro file where noted. --device is one of
// c2070 / gtx680 / k20 (default k20). --format takes any name printed by
// `brospmv formats`; unknown names are a hard error.
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/differential.h"
#include "core/matrix.h"
#include "core/serialize.h"
#include "engine/autotune.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "sparse/mmio.h"
#include "util/args.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace bro;

int usage() {
  std::cerr
      << "usage: brospmv <command> [args]\n"
         "  info <matrix>                      matrix statistics\n"
         "  formats                            list registered formats\n"
         "  compress <matrix> <out.bro>        offline compression "
         "(--format F, default BRO-HYB)\n"
         "  spmv <matrix|.bro> [--format F]    run y = A*1 and report\n"
         "  tune <matrix> [--device D]         simulated format ranking\n"
         "  bench <matrix> [--device D]        per-format simulated GFlop/s\n"
         "  fuzz [--rounds N] [--seed S]       differential-test every format\n"
         "       [--eps E] [--device D] [--no-sim] [--quiet]\n"
         "matrix: a .mtx path or a suite name (cant, pwtk, ...);\n"
         "options: --scale S (suite matrices, default 0.125),\n"
         "         --device c2070|gtx680|k20 (default k20),\n"
         "         --format <name from `brospmv formats`>\n";
  return 2;
}

std::string registered_names() {
  std::string out;
  for (const auto& n : engine::format_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Registry lookup for --format; unknown names are a hard error that lists
/// every registered name.
const engine::FormatTraits& parse_format(const std::string& name) {
  if (const auto* t = engine::find_format(name)) return *t;
  throw std::runtime_error("unknown --format '" + name +
                           "' (registered: " + registered_names() + ")");
}

sparse::Csr load_matrix(const std::string& name, const Args& args) {
  if (const auto entry = sparse::find_suite_entry(name))
    return sparse::generate_suite_matrix(*entry,
                                         args.get_double("scale", 0.125));
  return sparse::coo_to_csr(sparse::read_matrix_market_file(name));
}

sim::DeviceSpec device_from(const Args& args) {
  const std::string d = args.get("device", "k20");
  if (d == "c2070") return sim::tesla_c2070();
  if (d == "gtx680") return sim::gtx680();
  if (d == "k20") return sim::tesla_k20();
  throw std::runtime_error("unknown --device '" + d +
                           "' (use c2070, gtx680 or k20)");
}

int cmd_info(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto s = sparse::compute_stats(m);
  std::cout << "dimensions     " << sparse::dims_string(s.rows, s.cols) << '\n'
            << "non-zeros      " << s.nnz << '\n'
            << "row length     mean " << s.mean_row_length << ", sigma "
            << s.stddev_row_length << ", min " << s.min_row_length << ", max "
            << s.max_row_length << '\n'
            << "density        " << s.density << '\n';
  const auto mat = core::Matrix::from_csr(m);
  std::cout << "recommended    " << core::format_name(mat.auto_format())
            << '\n'
            << "index savings  " << mat.space_savings() * 100 << "%\n";
  return 0;
}

int cmd_formats() {
  for (const auto& t : engine::format_registry()) std::cout << t.name << '\n';
  return 0;
}

int cmd_compress(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const std::string out_path = args.positional().at(2);
  const auto& t = parse_format(args.get("format", "BRO-HYB"));
  if (!t.serialize)
    throw std::runtime_error(std::string(t.name) +
                             " has no serialized form (use a BRO format)");
  const auto mat = core::Matrix::from_csr(m);
  Timer timer;
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + out_path);
  t.serialize(out, mat);
  const auto s = t.savings ? t.savings(mat) : core::Savings{};
  std::cout << "compressed " << m.nnz() << " non-zeros to " << t.name
            << " in " << timer.seconds() << " s\nindex data "
            << s.original_bytes << " B -> " << s.compressed_bytes << " B ("
            << s.eta() * 100 << "% saved)\nwrote " << out_path << '\n';
  return 0;
}

int cmd_spmv(const Args& args) {
  const std::string src = args.positional().at(1);
  std::vector<value_t> y;
  std::size_t nnz = 0;
  double secs = 0;
  std::string format;

  if (src.size() > 4 && src.substr(src.size() - 4) == ".bro") {
    const auto bro = core::load_bro_hyb(src);
    std::vector<value_t> x(static_cast<std::size_t>(bro.cols()), 1.0);
    y.resize(static_cast<std::size_t>(bro.rows()));
    Timer t;
    bro.spmv(x, y);
    secs = t.seconds();
    nnz = bro.total_nnz();
    format = "BRO-HYB (from file)";
  } else {
    auto m = std::make_shared<core::Matrix>(
        core::Matrix::from_csr(load_matrix(src, args)));
    const core::Format f = args.has("format")
                               ? parse_format(args.get("format", "")).format
                               : m->auto_format();
    Timer build_timer;
    engine::SpmvPlan plan(m, f);
    const double build_secs = build_timer.seconds();
    std::vector<value_t> x(static_cast<std::size_t>(m->cols()), 1.0);
    y.resize(static_cast<std::size_t>(m->rows()));
    Timer t;
    plan.execute(x, y);
    secs = t.seconds();
    nnz = m->nnz();
    format = core::format_name(f);
    std::cout << "plan      built in " << build_secs << " s\n";
  }

  double checksum = 0;
  for (const auto v : y) checksum += v;
  std::cout << "format    " << format << '\n'
            << "time      " << secs << " s (host, single SpMV)\n"
            << "rate      " << 2.0 * double(nnz) / secs / 1e9
            << " GFlop/s (host)\n"
            << "checksum  sum(A*1) = " << checksum << '\n';
  return 0;
}

int cmd_tune(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto dev = device_from(args);
  const auto res = engine::autotune(m, dev);
  std::cout << "Simulated ranking on " << dev.name << ":\n";
  Table t({"Format", "GFlop/s", "index savings", "applicable"});
  for (const auto& e : res.ranking)
    t.add_row({core::format_name(e.format),
               e.applicable ? Table::fmt(e.gflops, 2) : "-",
               e.applicable ? Table::pct(e.eta) : "-",
               e.applicable ? "yes" : "no"});
  t.print(std::cout);
  return 0;
}

int cmd_bench(const Args& args) {
  // Equivalent to tune but over all three devices, one column each.
  const auto m = core::Matrix::from_csr(
      load_matrix(args.positional().at(1), args));
  Table t({"Format", "C2070", "GTX680", "K20"});
  bool first = true;
  std::vector<std::string> names;
  std::map<std::string, std::vector<std::string>> cells;
  for (const auto& dev : sim::all_devices()) {
    const auto res = engine::autotune(m, dev);
    for (const auto& e : res.ranking) {
      const std::string n = core::format_name(e.format);
      if (first) names.push_back(n);
      cells[n].push_back(e.applicable ? Table::fmt(e.gflops, 2) : "-");
    }
    first = false;
  }
  for (const auto& n : names) {
    std::vector<std::string> row = {n};
    // Rankings may order formats differently per device; pad defensively.
    auto& c = cells[n];
    c.resize(3, "-");
    row.insert(row.end(), c.begin(), c.end());
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}

int cmd_fuzz(const Args& args) {
  check::FuzzOptions opts;
  opts.rounds = static_cast<int>(args.get_long("rounds", opts.rounds));
  if (opts.rounds < 0) throw std::runtime_error("--rounds must be >= 0");
  opts.seed = static_cast<std::uint64_t>(
      args.get_long("seed", static_cast<long>(opts.seed)));
  opts.eps = args.get_double("eps", opts.eps);
  opts.simulate = !args.has("no-sim");
  opts.device = device_from(args);

  std::ostream* log = args.has("quiet") ? nullptr : &std::cout;
  const auto report = check::run_fuzz(opts, log);
  if (!report.ok()) {
    std::cerr << report.failures.size() << " differential failures:\n";
    for (const auto& f : report.failures)
      std::cerr << "  " << f.matrix << " [" << f.format << "/" << f.path
                << "] " << f.message << '\n';
    return 1;
  }
  std::cout << "fuzz OK: " << report.matrices << " matrices, "
            << report.comparisons << " comparisons against the CSR reference"
            << '\n';
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string cmd = args.positional().front();
    if (cmd == "info" && args.positional().size() == 2) return cmd_info(args);
    if (cmd == "formats" && args.positional().size() == 1)
      return cmd_formats();
    if (cmd == "compress" && args.positional().size() == 3)
      return cmd_compress(args);
    if (cmd == "spmv" && args.positional().size() == 2) return cmd_spmv(args);
    if (cmd == "tune" && args.positional().size() == 2) return cmd_tune(args);
    if (cmd == "bench" && args.positional().size() == 2) return cmd_bench(args);
    if (cmd == "fuzz" && args.positional().size() == 1) return cmd_fuzz(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "brospmv: " << e.what() << '\n';
    return 1;
  }
}
