// brospmv — command-line front end to the library.
//
//   brospmv info <matrix>                     matrix statistics
//   brospmv compress <matrix> <out.bro>       offline BRO-HYB compression
//   brospmv spmv <matrix|.bro> [--format F]   y = A*1, checksum + timing
//   brospmv tune <matrix> [--device D]        simulated format ranking
//   brospmv bench <matrix> [--device D]       per-format simulated GFlop/s
//
// <matrix> is a Matrix Market file, a named suite matrix (with optional
// --scale, default 0.125), or a .bro file where noted. --device is one of
// c2070 / gtx680 / k20 (default k20).
#include <iostream>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/serialize.h"
#include "kernels/autotune.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "sparse/mmio.h"
#include "util/args.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace bro;

int usage() {
  std::cerr
      << "usage: brospmv <command> [args]\n"
         "  info <matrix>                      matrix statistics\n"
         "  compress <matrix> <out.bro>        offline BRO-HYB compression\n"
         "  spmv <matrix|.bro> [--format F]    run y = A*1 and report\n"
         "  tune <matrix> [--device D]         simulated format ranking\n"
         "  bench <matrix> [--device D]        per-format simulated GFlop/s\n"
         "matrix: a .mtx path or a suite name (cant, pwtk, ...);\n"
         "options: --scale S (suite matrices, default 0.125),\n"
         "         --device c2070|gtx680|k20 (default k20)\n";
  return 2;
}

sparse::Csr load_matrix(const std::string& name, const Args& args) {
  if (const auto entry = sparse::find_suite_entry(name))
    return sparse::generate_suite_matrix(*entry,
                                         args.get_double("scale", 0.125));
  return sparse::coo_to_csr(sparse::read_matrix_market_file(name));
}

sim::DeviceSpec device_from(const Args& args) {
  const std::string d = args.get("device", "k20");
  if (d == "c2070") return sim::tesla_c2070();
  if (d == "gtx680") return sim::gtx680();
  if (d == "k20") return sim::tesla_k20();
  throw std::runtime_error("unknown --device '" + d +
                           "' (use c2070, gtx680 or k20)");
}

int cmd_info(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto s = sparse::compute_stats(m);
  std::cout << "dimensions     " << sparse::dims_string(s.rows, s.cols) << '\n'
            << "non-zeros      " << s.nnz << '\n'
            << "row length     mean " << s.mean_row_length << ", sigma "
            << s.stddev_row_length << ", min " << s.min_row_length << ", max "
            << s.max_row_length << '\n'
            << "density        " << s.density << '\n';
  const auto mat = core::Matrix::from_csr(m);
  std::cout << "recommended    " << core::format_name(mat.auto_format())
            << '\n'
            << "index savings  " << mat.space_savings() * 100 << "%\n";
  return 0;
}

int cmd_compress(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const std::string out = args.positional().at(2);
  Timer t;
  const auto bro = core::BroHyb::compress(m);
  core::save_bro_hyb(out, bro);
  std::cout << "compressed " << m.nnz() << " non-zeros in " << t.seconds()
            << " s\nindex data " << bro.original_index_bytes() << " B -> "
            << bro.compressed_index_bytes() << " B ("
            << (1.0 - double(bro.compressed_index_bytes()) /
                          double(bro.original_index_bytes())) *
                   100
            << "% saved)\nwrote " << out << '\n';
  return 0;
}

int cmd_spmv(const Args& args) {
  const std::string src = args.positional().at(1);
  std::vector<value_t> y;
  std::size_t nnz = 0;
  double secs = 0;
  std::string format;

  if (src.size() > 4 && src.substr(src.size() - 4) == ".bro") {
    const auto bro = core::load_bro_hyb(src);
    std::vector<value_t> x(static_cast<std::size_t>(bro.cols()), 1.0);
    y.resize(static_cast<std::size_t>(bro.rows()));
    Timer t;
    bro.spmv(x, y);
    secs = t.seconds();
    nnz = bro.total_nnz();
    format = "BRO-HYB (from file)";
  } else {
    const auto m = core::Matrix::from_csr(load_matrix(src, args));
    const std::string fname = args.get("format", "");
    core::Format f = m.auto_format();
    if (!fname.empty()) {
      bool found = false;
      for (const auto cand :
           {core::Format::kCsr, core::Format::kCoo, core::Format::kEll,
            core::Format::kEllR, core::Format::kHyb, core::Format::kBroEll,
            core::Format::kBroCoo, core::Format::kBroHyb,
            core::Format::kBroCsr}) {
        if (fname == core::format_name(cand)) {
          f = cand;
          found = true;
        }
      }
      if (!found)
        throw std::runtime_error("unknown --format '" + fname + '\'');
    }
    std::vector<value_t> x(static_cast<std::size_t>(m.cols()), 1.0);
    y.resize(static_cast<std::size_t>(m.rows()));
    Timer t;
    m.spmv(x, y, f);
    secs = t.seconds();
    nnz = m.nnz();
    format = core::format_name(f);
  }

  double checksum = 0;
  for (const auto v : y) checksum += v;
  std::cout << "format    " << format << '\n'
            << "time      " << secs << " s (host, single SpMV)\n"
            << "rate      " << 2.0 * double(nnz) / secs / 1e9
            << " GFlop/s (host)\n"
            << "checksum  sum(A*1) = " << checksum << '\n';
  return 0;
}

int cmd_tune(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto dev = device_from(args);
  const auto res = kernels::autotune(m, dev);
  std::cout << "Simulated ranking on " << dev.name << ":\n";
  Table t({"Format", "GFlop/s", "index savings", "applicable"});
  for (const auto& e : res.ranking)
    t.add_row({core::format_name(e.format),
               e.applicable ? Table::fmt(e.gflops, 2) : "-",
               e.applicable ? Table::pct(e.eta) : "-",
               e.applicable ? "yes" : "no"});
  t.print(std::cout);
  return 0;
}

int cmd_bench(const Args& args) {
  // Equivalent to tune but over all three devices, one column each.
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  Table t({"Format", "C2070", "GTX680", "K20"});
  std::vector<std::vector<std::string>> rows;
  bool first = true;
  std::vector<std::string> names;
  std::map<std::string, std::vector<std::string>> cells;
  for (const auto& dev : sim::all_devices()) {
    const auto res = kernels::autotune(m, dev);
    for (const auto& e : res.ranking) {
      const std::string n = core::format_name(e.format);
      if (first) names.push_back(n);
      cells[n].push_back(e.applicable ? Table::fmt(e.gflops, 2) : "-");
    }
    first = false;
  }
  for (const auto& n : names) {
    std::vector<std::string> row = {n};
    // Rankings may order formats differently per device; pad defensively.
    auto& c = cells[n];
    c.resize(3, "-");
    row.insert(row.end(), c.begin(), c.end());
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string cmd = args.positional().front();
    if (cmd == "info" && args.positional().size() == 2) return cmd_info(args);
    if (cmd == "compress" && args.positional().size() == 3)
      return cmd_compress(args);
    if (cmd == "spmv" && args.positional().size() == 2) return cmd_spmv(args);
    if (cmd == "tune" && args.positional().size() == 2) return cmd_tune(args);
    if (cmd == "bench" && args.positional().size() == 2) return cmd_bench(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "brospmv: " << e.what() << '\n';
    return 1;
  }
}
