// brospmv — command-line front end to the library.
//
//   brospmv info <matrix>                     matrix statistics
//   brospmv formats                           list registered formats
//   brospmv compress <matrix> <out.bro>       offline compression (--format)
//   brospmv spmv <matrix|.bro> [--format F]   y = A*1, checksum + timing
//   brospmv tune <matrix> [--device D]        simulated format ranking
//   brospmv bench <matrix> [--device D]       per-format simulated GFlop/s
//   brospmv fuzz [--rounds N] [--seed S]      differential fuzz all formats
//   brospmv serve-bench [--clients N] ...     drive the serving layer
//
// <matrix> is a Matrix Market file, a named suite matrix (with optional
// --scale, default 0.125), or a .bro file where noted. --device is one of
// c2070 / gtx680 / k20 (default k20). --format takes any name printed by
// `brospmv formats`; unknown names are a hard error.
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.h"
#include "core/bro_bcsr.h"
#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/matrix.h"
#include "core/serialize.h"
#include "engine/autotune.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "kernels/bro_bcsr_decode.h"
#include "kernels/cpu_features.h"
#include "kernels/decode_bench.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "sparse/mmio.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/server.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using namespace bro;

int usage() {
  std::cerr
      << "usage: brospmv <command> [args]\n"
         "  info <matrix>                      matrix statistics\n"
         "  formats                            list registered formats\n"
         "  compress <matrix> <out.bro>        offline compression "
         "(--format F, default BRO-HYB)\n"
         "  spmv <matrix|.bro> [--format F]    run y = A*1 and report\n"
         "  tune <matrix> [--device D]         simulated format ranking\n"
         "  bench <matrix> [--device D]        per-format simulated GFlop/s\n"
         "  fuzz [--rounds N] [--seed S]       differential-test every format\n"
         "       [--eps E] [--device D] [--no-sim] [--no-decode] [--no-simd]\n"
         "       [--quiet] [--spmm-k K] [--no-shard] [--shards S]\n"
         "  cpuinfo [--short]                  SIMD probe + dispatch report\n"
         "                                     (--short: active ISA only)\n"
         "  bench --decode [--min-time S]      host decode-throughput sweep\n"
         "                                     (specialized vs generic vs\n"
         "                                     legacy slots vs SIMD ISAs)\n"
         "       [--suite [--scale S]]         add the BRO-ELL suite decode\n"
         "                                     A/B (scalar vs active SIMD)\n"
         "  entropy-bench [--scale S] [--min-time T]  BRO-ANS vs BRO-ELL\n"
         "       [--gate [--max-slowdown X]]  savings + decode A/B on Test\n"
         "                                    Set 1 (--gate: non-zero exit\n"
         "                                    unless ANS wins savings within\n"
         "                                    the slowdown budget)\n"
         "  block-bench [--scale S] [--min-time T]  BRO-BCSR vs BRO-ELL\n"
         "       [--json PATH]                savings + decode A/B on the\n"
         "       [--gate [--min-speedup X]]   truss-FEM suite (Test Set 3);\n"
         "                                    --json: machine-readable\n"
         "                                    archive; --gate: non-zero\n"
         "                                    exit unless BCSR wins eta and\n"
         "                                    the decode speedup floor,\n"
         "                                    parity holds on the\n"
         "                                    adversarial battery, and Test\n"
         "                                    Set 1 never auto-selects it\n"
         "  serve-bench [--threads N] [--clients C] [--requests R]\n"
         "       [--matrices M] [--max-batch K] [--cache-mb B]\n"
         "       [--format F] [--scale S] [--seed S]\n"
         "       [--pools P] [--pool-threads T] [--pool-omp O]\n"
         "       [--shards S] [--shard-min-nnz N]\n"
         "       [--admit-rate R] [--admit-burst B] [--shed-depth D]\n"
         "       [--slo-p99-ms MS]             drive the serving layer and\n"
         "                                     report throughput + metrics\n"
         "                                     (--slo-p99-ms: non-zero exit\n"
         "                                     when queue-wait p99 + execute\n"
         "                                     p99 exceeds the budget)\n"
         "  serve [--listen A] [--port P] [--port-file F]\n"
         "       [+ the serve-bench server knobs]\n"
         "                                     TCP daemon: serve the bro::net\n"
         "                                     protocol until a DRAIN op\n"
         "  net-bench --port P [--host A] [--port-file F]\n"
         "       [--clients C] [--requests R] [--window W] [--matrices M]\n"
         "       [--format F] [--scale S] [--seed S] [--slo-p99-ms MS]\n"
         "       [--no-verify] [--drain]       loopback load generator:\n"
         "                                     upload, drive, reconcile\n"
         "                                     client-side rejection counts\n"
         "                                     against server STATS\n"
         "matrix: a .mtx path or a suite name (cant, pwtk, ...);\n"
         "options: --scale S (suite matrices, default 0.125),\n"
         "         --device c2070|gtx680|k20 (default k20),\n"
         "         --format <name from `brospmv formats`>\n";
  return 2;
}

std::string registered_names() {
  std::string out;
  for (const auto& n : engine::format_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Registry lookup for --format; unknown names are a hard error that lists
/// every registered name.
const engine::FormatTraits& parse_format(const std::string& name) {
  if (const auto* t = engine::find_format(name)) return *t;
  throw std::runtime_error("unknown --format '" + name +
                           "' (registered: " + registered_names() + ")");
}

sparse::Csr load_matrix(const std::string& name, const Args& args) {
  if (const auto entry = sparse::find_suite_entry(name))
    return sparse::generate_suite_matrix(*entry,
                                         args.get_double("scale", 0.125));
  return sparse::coo_to_csr(sparse::read_matrix_market_file(name));
}

sim::DeviceSpec device_from(const Args& args) {
  const std::string d = args.get("device", "k20");
  if (d == "c2070") return sim::tesla_c2070();
  if (d == "gtx680") return sim::gtx680();
  if (d == "k20") return sim::tesla_k20();
  throw std::runtime_error("unknown --device '" + d +
                           "' (use c2070, gtx680 or k20)");
}

int cmd_info(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto s = sparse::compute_stats(m);
  std::cout << "dimensions     " << sparse::dims_string(s.rows, s.cols) << '\n'
            << "non-zeros      " << s.nnz << '\n'
            << "row length     mean " << s.mean_row_length << ", sigma "
            << s.stddev_row_length << ", min " << s.min_row_length << ", max "
            << s.max_row_length << '\n'
            << "density        " << s.density << '\n';
  const auto mat = core::Matrix::from_csr(m);
  std::cout << "recommended    " << core::format_name(mat.auto_format())
            << '\n'
            << "index savings  " << mat.space_savings() * 100 << "%\n";
  return 0;
}

int cmd_formats() {
  for (const auto& t : engine::format_registry()) std::cout << t.name << '\n';
  return 0;
}

int cmd_compress(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const std::string out_path = args.positional().at(2);
  const auto& t = parse_format(args.get("format", "BRO-HYB"));
  if (!t.serialize)
    throw std::runtime_error(std::string(t.name) +
                             " has no serialized form (use a BRO format)");
  const auto mat = core::Matrix::from_csr(m);
  Timer timer;
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + out_path);
  t.serialize(out, mat);
  const auto s = t.savings ? t.savings(mat) : core::Savings{};
  std::cout << "compressed " << m.nnz() << " non-zeros to " << t.name
            << " in " << timer.seconds() << " s\nindex data "
            << s.original_bytes << " B -> " << s.compressed_bytes << " B ("
            << s.eta() * 100 << "% saved)\nwrote " << out_path << '\n';
  return 0;
}

int cmd_spmv(const Args& args) {
  const std::string src = args.positional().at(1);
  std::vector<value_t> y;
  std::size_t nnz = 0;
  double secs = 0;
  std::string format;

  // Resolve the source to (CSR, format) without naming any format here: a
  // .bro file carries whichever registered format `compress --format`
  // wrote — the tag-dispatched reader handles them all — and the planner
  // below rebuilds that format from the registry entry. Adding a format to
  // the registry makes it runnable from file with no tool change.
  std::shared_ptr<core::Matrix> m;
  core::Format f;
  if (src.size() > 4 && src.substr(src.size() - 4) == ".bro") {
    std::ifstream in(src, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + src);
    f = core::peek_bro_format(in);
    in.seekg(0);
    m = std::make_shared<core::Matrix>(
        core::Matrix::from_csr(core::read_bro_to_csr(in)));
    format = std::string(core::format_name(f)) + " (from file)";
  } else {
    m = std::make_shared<core::Matrix>(
        core::Matrix::from_csr(load_matrix(src, args)));
    f = args.has("format") ? parse_format(args.get("format", "")).format
                           : m->auto_format();
    format = core::format_name(f);
  }

  Timer build_timer;
  engine::SpmvPlan plan(m, f);
  const double build_secs = build_timer.seconds();
  std::vector<value_t> x(static_cast<std::size_t>(m->cols()), 1.0);
  y.resize(static_cast<std::size_t>(m->rows()));
  Timer t;
  plan.execute(x, y);
  secs = t.seconds();
  nnz = m->nnz();
  std::cout << "plan      built in " << build_secs << " s\n";

  double checksum = 0;
  for (const auto v : y) checksum += v;
  std::cout << "format    " << format << '\n'
            << "time      " << secs << " s (host, single SpMV)\n"
            << "rate      " << 2.0 * double(nnz) / secs / 1e9
            << " GFlop/s (host)\n"
            << "checksum  sum(A*1) = " << checksum << '\n';
  return 0;
}

int cmd_tune(const Args& args) {
  const sparse::Csr m = load_matrix(args.positional().at(1), args);
  const auto dev = device_from(args);
  const auto res = engine::autotune(m, dev);
  std::cout << "Simulated ranking on " << dev.name << ":\n";
  Table t({"Format", "GFlop/s", "index savings", "applicable"});
  for (const auto& e : res.ranking)
    t.add_row({core::format_name(e.format),
               e.applicable ? Table::fmt(e.gflops, 2) : "-",
               e.applicable ? Table::pct(e.eta) : "-",
               e.applicable ? "yes" : "no"});
  t.print(std::cout);
  return 0;
}

/// `cpuinfo`: the SIMD dispatch report — what the hardware offers, what the
/// binary carries, what BRO_SIMD requests and what each BRO format's planned
/// kernel table actually resolved to. `--short` prints just the active ISA
/// name (the CI artifact-tagging hook).
int cmd_cpuinfo(const Args& args) {
  namespace bk = kernels;
  const bk::SimdIsa active = bk::active_simd_isa();
  if (args.has("short")) {
    std::cout << bk::simd_isa_name(active) << '\n';
    return 0;
  }

  const auto yn = [](bool b) { return b ? "yes" : "no"; };
  const bk::CpuFeatures f = bk::cpu_features();
  std::cout << "hardware   sse4.2=" << yn(f.sse4) << " avx2=" << yn(f.avx2)
            << '\n'
            << "compiled   sse4=" << yn(bk::simd_isa_compiled(bk::SimdIsa::kSse4))
            << " avx2=" << yn(bk::simd_isa_compiled(bk::SimdIsa::kAvx2)) << '\n'
            << "runnable   sse4=" << yn(bk::simd_isa_runnable(bk::SimdIsa::kSse4))
            << " avx2=" << yn(bk::simd_isa_runnable(bk::SimdIsa::kAvx2)) << '\n';

  const char* raw = bk::simd_env_raw();
  std::cout << "BRO_SIMD   " << (raw ? raw : "(unset)");
  if (raw && !bk::parse_simd_isa(raw))
    std::cout << " (unparsable, treated as unset)";
  std::cout << '\n'
            << "best       " << bk::simd_isa_name(bk::best_simd_isa()) << '\n'
            << "active     " << bk::simd_isa_name(active) << '\n';

  // What plan-time selection resolves to right now, per BRO format: compress
  // a tiny fixed matrix and read the ISA tag off the planned kernel tables.
  sparse::GenSpec spec;
  spec.seed = 2013;
  spec.rows = 64;
  spec.cols = 64;
  spec.mu = 4.0;
  const sparse::Csr csr = sparse::generate(spec);
  const auto ell = core::BroEll::compress(sparse::csr_to_ell(csr));
  const auto ell_kernels = kernels::plan_bro_ell_kernels(ell);
  const auto coo = core::BroCoo::compress(sparse::csr_to_coo(csr));
  const auto coo_kernels = kernels::plan_bro_coo_kernels(coo);
  std::cout << "BRO-ELL    "
            << (ell_kernels.empty()
                    ? "(no slices)"
                    : bk::simd_isa_name(ell_kernels.front().isa))
            << '\n'
            << "BRO-COO    "
            << (coo_kernels.empty()
                    ? "(no intervals)"
                    : bk::simd_isa_name(coo_kernels.front().isa))
            << '\n';
  return 0;
}

/// `bench --decode --suite`: the scalar-vs-SIMD BRO-ELL suite decode A/B
/// (the EXPERIMENTS.md protocol) on the active ISA.
int cmd_bench_decode_suite(const Args& args, double min_time) {
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  if (isa == kernels::SimdIsa::kScalar) {
    std::cout << "\nSuite decode A/B skipped: no SIMD ISA is active "
                 "(host support, compiled sets and BRO_SIMD all allow only "
                 "scalar).\n";
    return 0;
  }
  const double scale = args.get_double("scale", 0.125);
  std::cout << "\nBRO-ELL suite decode throughput (Gdeltas/s), scalar vs "
            << kernels::simd_isa_name(isa) << ", scale " << scale << ":\n";
  const auto rows = kernels::ell_suite_decode_sweep(isa, scale, min_time);
  Table t({"Matrix", "deltas", "scalar", kernels::simd_isa_name(isa),
           "speedup"});
  std::vector<double> speedups;
  for (const auto& r : rows) {
    const double speedup = r.simd_gdps / r.scalar_gdps;
    speedups.push_back(speedup);
    t.add_row({r.matrix, std::to_string(r.deltas),
               Table::fmt(r.scalar_gdps, 3), Table::fmt(r.simd_gdps, 3),
               Table::fmt(speedup, 2) + "x"});
  }
  t.print(std::cout);
  double log_sum = 0;
  for (const double s : speedups) log_sum += std::log(s);
  if (!speedups.empty())
    std::cout << "geomean speedup: "
              << Table::fmt(
                     std::exp(log_sum / static_cast<double>(speedups.size())),
                     2)
              << "x over " << speedups.size() << " matrices\n";
  return 0;
}

/// `bench --decode`: host decode throughput per bit width, in giga-deltas
/// per second, for the decoder variants the PR's perf claims compare (the
/// scalar trio plus every SIMD ISA runnable on this host; ISA columns the
/// host lacks print n/a).
int cmd_bench_decode(const Args& args) {
  const double min_time = args.get_double("min-time", 0.02);
  std::cout << "Decode throughput (Gdeltas/s), 64 lanes x 16384 deltas:\n";
  Table t({"Width", "sym_len", "specialized", "generic", "legacy slots",
           "sse4", "avx2"});
  for (const int sym_len : {32, 64}) {
    const auto rows =
        kernels::decode_throughput_sweep(sym_len, 64, 16384, min_time);
    for (const auto& r : rows)
      t.add_row({std::to_string(r.width), std::to_string(r.sym_len),
                 Table::fmt(r.specialized_gdps, 3), Table::fmt(r.generic_gdps, 3),
                 Table::fmt(r.legacy_gdps, 3), Table::fmt(r.sse4_gdps, 3),
                 Table::fmt(r.avx2_gdps, 3)});
  }
  t.print(std::cout);
  if (args.has("suite")) return cmd_bench_decode_suite(args, min_time);
  return 0;
}

/// `entropy-bench`: the BRO-ANS vs BRO-ELL A/B on Test Set 1 — per matrix,
/// index space savings of both formats and decode throughput of the paths
/// dispatch plans at the active ISA (BRO_SIMD honored). With --gate, exits
/// non-zero unless BRO-ANS wins mean savings and its decode throughput
/// stays within --max-slowdown of BRO-ELL's (geomean), the PR's acceptance
/// claim as a CI check.
int cmd_entropy_bench(const Args& args) {
  const double scale = args.get_double("scale", 0.125);
  const double min_time = args.get_double("min-time", 0.02);
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  // With the AVX2 interleaved-stream decoder the design target itself is
  // the budget: BRO-ANS must hold within 1.5x of BRO-ELL (EXPERIMENTS.md).
  // ISAs without a vector tANS kernel (scalar, SSE4) decode on the
  // chain-interleaved scalar path in the 2.5-3x band, so they keep the old
  // 4x headroom — the BRO_SIMD=scalar CI pass still gates that path.
  // Tighten with --max-slowdown when chasing decode regressions.
  const double default_budget =
      isa == kernels::SimdIsa::kAvx2 ? 1.5 : 4.0;
  const double max_slowdown = args.get_double("max-slowdown", default_budget);
  std::cout << "BRO-ANS vs BRO-ELL on Test Set 1 (scale " << scale << ", "
            << kernels::simd_isa_name(isa)
            << "): index savings eta and dispatched decode Gdeltas/s\n";
  const auto rows = kernels::entropy_suite_sweep(isa, scale, min_time);
  Table t({"Matrix", "deltas", "eta ELL", "eta ANS", "ELL Gd/s", "ANS Gd/s",
           "slowdown"});
  double ell_eta_sum = 0, ans_eta_sum = 0, log_slowdown_sum = 0;
  for (const auto& r : rows) {
    const double slowdown = r.ell_gdps / r.ans_gdps;
    ell_eta_sum += r.ell_eta;
    ans_eta_sum += r.ans_eta;
    log_slowdown_sum += std::log(slowdown);
    t.add_row({r.matrix, std::to_string(r.deltas), Table::fmt(r.ell_eta, 3),
               Table::fmt(r.ans_eta, 3), Table::fmt(r.ell_gdps, 3),
               Table::fmt(r.ans_gdps, 3), Table::fmt(slowdown, 2) + "x"});
  }
  t.print(std::cout);
  if (rows.empty()) {
    std::cerr << "entropy-bench: no matrices produced deltas\n";
    return 1;
  }
  const double n = static_cast<double>(rows.size());
  const double mean_ell = ell_eta_sum / n;
  const double mean_ans = ans_eta_sum / n;
  const double geo_slowdown = std::exp(log_slowdown_sum / n);
  std::cout << "mean eta: BRO-ELL " << Table::fmt(mean_ell, 4) << ", BRO-ANS "
            << Table::fmt(mean_ans, 4) << "; geomean decode slowdown "
            << Table::fmt(geo_slowdown, 2) << "x over " << rows.size()
            << " matrices\n";
  if (!args.has("gate")) return 0;
  bool ok = true;
  if (mean_ans <= mean_ell) {
    std::cerr << "entropy-bench GATE FAIL: BRO-ANS mean savings "
              << Table::fmt(mean_ans, 4) << " does not beat BRO-ELL "
              << Table::fmt(mean_ell, 4) << "\n";
    ok = false;
  }
  if (geo_slowdown > max_slowdown) {
    std::cerr << "entropy-bench GATE FAIL: decode slowdown "
              << Table::fmt(geo_slowdown, 2) << "x exceeds "
              << Table::fmt(max_slowdown, 2) << "x\n";
    ok = false;
  }
  if (ok) std::cout << "entropy-bench gate OK\n";
  return ok ? 0 : 1;
}

/// `block-bench`: the BRO-BCSR acceptance experiment. A/B table of
/// fill-adjusted savings and dispatched index decode throughput against
/// BRO-ELL on the truss-FEM workload (Test Set 3), with end-to-end SpMV
/// rows/s as informational columns and an optional machine-readable JSON
/// archive for CI. Under --gate the exit code enforces the PR's perf
/// claim: BRO-BCSR must win mean fill-adjusted eta AND hold the geomean
/// decode-throughput speedup floor, the scalar/SSE4/AVX2 kernels must
/// agree bitwise across the adversarial battery at every forced shape and
/// symbol length, and no Test Set 1 matrix may auto-select the format.
int cmd_block_bench(const Args& args) {
  const double scale = args.get_double("scale", 0.125);
  const double min_time = args.get_double("min-time", 0.02);
  const kernels::SimdIsa isa = kernels::active_simd_isa();
  // The 1.5x floor is the AVX2 claim from the acceptance criteria; the
  // one-index-per-block stream decodes ~block area fewer symbols per
  // matrix row, so scalar and SSE4 must clear the same floor.
  const double min_speedup = args.get_double("min-speedup", 1.5);

  std::cout << "BRO-BCSR vs BRO-ELL on the truss-FEM workload (scale "
            << scale << ", " << kernels::simd_isa_name(isa)
            << "): fill-adjusted eta, index decode rows/s, SpMV rows/s\n";
  const auto rows = kernels::block_suite_sweep(isa, scale, min_time);
  if (rows.empty()) {
    std::cerr << "block-bench: Test Set 3 produced no matrices\n";
    return 1;
  }
  Table t({"Matrix", "rows", "shape", "fill", "eta ELL", "eta BCSR",
           "dec ELL Mrow/s", "dec BCSR Mrow/s", "dec speedup",
           "spmv ELL Mrow/s", "spmv BCSR Mrow/s"});
  double ell_eta_sum = 0, bcsr_eta_sum = 0, log_speedup_sum = 0;
  for (const auto& r : rows) {
    const double speedup = r.bcsr_rps / r.ell_rps;
    ell_eta_sum += r.ell_eta;
    bcsr_eta_sum += r.bcsr_eta;
    log_speedup_sum += std::log(speedup);
    t.add_row({r.matrix, std::to_string(r.rows),
               std::to_string(r.shape_r) + "x" + std::to_string(r.shape_c),
               Table::fmt(r.fill, 3), Table::fmt(r.ell_eta, 3),
               Table::fmt(r.bcsr_eta, 3), Table::fmt(r.ell_rps / 1e6, 2),
               Table::fmt(r.bcsr_rps / 1e6, 2),
               Table::fmt(speedup, 2) + "x",
               Table::fmt(r.ell_spmv_rps / 1e6, 2),
               Table::fmt(r.bcsr_spmv_rps / 1e6, 2)});
  }
  t.print(std::cout);
  const double n = static_cast<double>(rows.size());
  const double mean_ell = ell_eta_sum / n;
  const double mean_bcsr = bcsr_eta_sum / n;
  const double geo_speedup = std::exp(log_speedup_sum / n);
  std::cout << "mean fill-adjusted eta: BRO-ELL " << Table::fmt(mean_ell, 4)
            << ", BRO-BCSR " << Table::fmt(mean_bcsr, 4)
            << "; geomean decode speedup " << Table::fmt(geo_speedup, 2)
            << "x over " << rows.size() << " matrices\n";

  if (args.has("json")) {
    const std::string path = args.get("json", "");
    std::ofstream js(path);
    if (!js) throw std::runtime_error("cannot open " + path);
    js << "{\n  \"isa\": \"" << kernels::simd_isa_name(isa)
       << "\",\n  \"scale\": " << scale << ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      js << "    {\"matrix\": \"" << r.matrix << "\", \"rows\": " << r.rows
         << ", \"nnz\": " << r.nnz << ", \"shape\": \"" << r.shape_r << "x"
         << r.shape_c << "\", \"fill\": " << r.fill
         << ", \"eta_ell\": " << r.ell_eta
         << ", \"eta_bcsr\": " << r.bcsr_eta
         << ", \"ell_decode_rows_per_s\": " << r.ell_rps
         << ", \"bcsr_decode_rows_per_s\": " << r.bcsr_rps
         << ", \"ell_spmv_rows_per_s\": " << r.ell_spmv_rps
         << ", \"bcsr_spmv_rows_per_s\": " << r.bcsr_spmv_rps << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"mean_eta_ell\": " << mean_ell
       << ",\n  \"mean_eta_bcsr\": " << mean_bcsr
       << ",\n  \"geomean_decode_speedup\": " << geo_speedup << "\n}\n";
    std::cout << "wrote " << path << '\n';
  }

  if (!args.has("gate")) return 0;
  bool ok = true;
  if (mean_bcsr <= mean_ell) {
    std::cerr << "block-bench GATE FAIL: BRO-BCSR mean fill-adjusted eta "
              << Table::fmt(mean_bcsr, 4) << " does not beat BRO-ELL "
              << Table::fmt(mean_ell, 4) << "\n";
    ok = false;
  }
  if (geo_speedup < min_speedup) {
    std::cerr << "block-bench GATE FAIL: decode speedup "
              << Table::fmt(geo_speedup, 2) << "x below "
              << Table::fmt(min_speedup, 2) << "x\n";
    ok = false;
  }

  // Bitwise parity across the adversarial battery: every forced shape and
  // symbol length, every kernel ISA this process can run, against the
  // sequential 8-lane reference.
  std::size_t parity_checks = 0, applicable_cases = 0;
  for (const auto& c : sparse::adversarial_suite()) {
    if (core::bro_bcsr_applicable(c.csr, 3.0)) ++applicable_cases;
    for (const auto& [br, bc] : core::kBcsrCandidateShapes)
      for (const int sym_len : {32, 64}) {
        core::BroBcsrOptions o;
        o.block_rows = br;
        o.block_cols = bc;
        o.sym_len = sym_len;
        const core::BroBcsr a = core::BroBcsr::compress(c.csr, o);
        std::vector<value_t> x(static_cast<std::size_t>(c.csr.cols));
        for (std::size_t i = 0; i < x.size(); ++i)
          x[i] = 1.0 + static_cast<value_t>(i % 16) * 0.0625;
        std::vector<value_t> ref(static_cast<std::size_t>(c.csr.rows));
        a.spmv(x, ref);
        for (const kernels::SimdIsa k : {kernels::SimdIsa::kScalar,
                                         kernels::SimdIsa::kSse4,
                                         kernels::SimdIsa::kAvx2}) {
          if (k != kernels::SimdIsa::kScalar &&
              !kernels::simd_isa_runnable(k))
            continue;
          const auto ks = kernels::plan_bro_bcsr_kernels(a, k);
          std::vector<value_t> y(ref.size(), 0.0);
          for (std::size_t si = 0; si < ks.size(); ++si)
            ks[si].spmv(a, si, x, y);
          for (std::size_t i = 0; i < ref.size(); ++i)
            if (std::bit_cast<std::uint64_t>(y[i]) !=
                std::bit_cast<std::uint64_t>(ref[i])) {
              std::cerr << "block-bench GATE FAIL: " << c.name << " " << br
                        << "x" << bc << " sym" << sym_len << " "
                        << kernels::simd_isa_name(k)
                        << " differs bitwise from the reference at row " << i
                        << "\n";
              ok = false;
              break;
            }
          ++parity_checks;
        }
      }
  }
  if (applicable_cases == 0) {
    std::cerr << "block-bench GATE FAIL: no adversarial case passes the "
                 "BRO-BCSR applicability test\n";
    ok = false;
  }
  std::cout << "adversarial parity: " << parity_checks
            << " decode sweeps bitwise-identical, " << applicable_cases
            << " case(s) BCSR-applicable\n";

  // Auto-selection hygiene: the paper suite (Test Set 1) must never pick
  // the blocked format.
  for (const auto& e : sparse::suite_test_set(1)) {
    const sparse::Csr m = sparse::generate_suite_matrix(e, scale);
    if (engine::auto_select(m, 3.0) == core::Format::kBroBcsr) {
      std::cerr << "block-bench GATE FAIL: Test Set 1 matrix " << e.name
                << " auto-selects BRO-BCSR\n";
      ok = false;
    }
  }

  if (ok) std::cout << "block-bench gate OK\n";
  return ok ? 0 : 1;
}

int cmd_bench(const Args& args) {
  if (args.has("decode")) return cmd_bench_decode(args);
  // Equivalent to tune but over all three devices, one column each.
  const auto m = core::Matrix::from_csr(
      load_matrix(args.positional().at(1), args));
  Table t({"Format", "C2070", "GTX680", "K20"});
  bool first = true;
  std::vector<std::string> names;
  std::map<std::string, std::vector<std::string>> cells;
  for (const auto& dev : sim::all_devices()) {
    const auto res = engine::autotune(m, dev);
    for (const auto& e : res.ranking) {
      const std::string n = core::format_name(e.format);
      if (first) names.push_back(n);
      cells[n].push_back(e.applicable ? Table::fmt(e.gflops, 2) : "-");
    }
    first = false;
  }
  for (const auto& n : names) {
    std::vector<std::string> row = {n};
    // Rankings may order formats differently per device; pad defensively.
    auto& c = cells[n];
    c.resize(3, "-");
    row.insert(row.end(), c.begin(), c.end());
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}

int cmd_fuzz(const Args& args) {
  check::FuzzOptions opts;
  opts.rounds = static_cast<int>(args.get_long("rounds", opts.rounds));
  if (opts.rounds < 0) throw std::runtime_error("--rounds must be >= 0");
  opts.seed = static_cast<std::uint64_t>(
      args.get_long("seed", static_cast<long>(opts.seed)));
  opts.eps = args.get_double("eps", opts.eps);
  opts.simulate = !args.has("no-sim");
  opts.device = device_from(args);
  opts.spmm_k = static_cast<int>(args.get_long("spmm-k", opts.spmm_k));
  if (opts.spmm_k < 0) throw std::runtime_error("--spmm-k must be >= 0");
  opts.decode_check = !args.has("no-decode");
  opts.simd_check = !args.has("no-simd");
  opts.shard_check = !args.has("no-shard");
  opts.shard_count =
      static_cast<int>(args.get_long("shards", opts.shard_count));
  if (opts.shard_count < 1) throw std::runtime_error("--shards must be >= 1");

  std::ostream* log = args.has("quiet") ? nullptr : &std::cout;
  const auto report = check::run_fuzz(opts, log);
  if (!report.ok()) {
    std::cerr << report.failures.size() << " differential failures:\n";
    for (const auto& f : report.failures)
      std::cerr << "  " << f.matrix << " [" << f.format << "/" << f.path
                << "] " << f.message << '\n';
    return 1;
  }
  std::cout << "fuzz OK: " << report.matrices << " matrices, "
            << report.comparisons << " comparisons against the CSR reference"
            << '\n';
  return 0;
}

/// The ServerOptions knobs shared by serve-bench and the serve daemon.
serve::ServerOptions server_options_from(const Args& args) {
  serve::ServerOptions opts;
  opts.threads = static_cast<int>(args.get_long("threads", opts.threads));
  if (opts.threads < 0) throw std::runtime_error("--threads must be >= 0");
  opts.max_queue = static_cast<std::size_t>(
      args.get_long("max-queue", static_cast<long>(opts.max_queue)));
  opts.max_batch = static_cast<int>(args.get_long("max-batch", opts.max_batch));
  opts.cache_bytes =
      static_cast<std::size_t>(args.get_long("cache-mb", 256)) << 20;
  if (args.has("format")) opts.format = parse_format(args.get("format", "")).format;
  opts.pools = static_cast<int>(args.get_long("pools", opts.pools));
  opts.pool_threads =
      static_cast<int>(args.get_long("pool-threads", opts.pool_threads));
  opts.pool_omp = static_cast<int>(args.get_long("pool-omp", opts.pool_omp));
  opts.shards = static_cast<int>(args.get_long("shards", opts.shards));
  opts.shard_min_nnz = static_cast<std::size_t>(
      args.get_long("shard-min-nnz",
                    static_cast<long>(opts.shard_min_nnz)));
  opts.admission.rate = args.get_double("admit-rate", opts.admission.rate);
  opts.admission.burst = args.get_double("admit-burst", opts.admission.burst);
  opts.admission.shed_depth = static_cast<std::size_t>(
      args.get_long("shed-depth",
                    static_cast<long>(opts.admission.shed_depth)));
  return opts;
}

/// The --slo-p99-ms gate shared by serve-bench and net-bench: the service
/// budget is split queue-wait p99 + execute p99 (seconds in, ms budget).
int check_slo(const Args& args, double wait_p99_s, double exec_p99_s) {
  if (!args.has("slo-p99-ms")) return 0;
  const double budget_ms = args.get_double("slo-p99-ms", 0);
  const double actual_ms = (wait_p99_s + exec_p99_s) * 1e3;
  if (actual_ms <= budget_ms) {
    std::cout << "SLO OK: wait p99 + execute p99 = " << actual_ms
              << " ms <= " << budget_ms << " ms\n";
    return 0;
  }
  std::cerr << "SLO FAIL: wait p99 " << wait_p99_s * 1e3 << " ms + execute p99 "
            << exec_p99_s * 1e3 << " ms = " << actual_ms << " ms > "
            << budget_ms << " ms\n";
  return 1;
}

int cmd_serve_bench(const Args& args) {
  serve::ServerOptions opts = server_options_from(args);

  const int clients = static_cast<int>(args.get_long("clients", 4));
  const long requests = args.get_long("requests", 200); // per client
  const int n_matrices = static_cast<int>(args.get_long("matrices", 4));
  const double scale = args.get_double("scale", 0.05);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_long("seed", 2013));
  if (clients < 1 || requests < 1 || n_matrices < 1)
    throw std::runtime_error(
        "--clients, --requests and --matrices must be >= 1");

  serve::SpmvServer server(opts);

  // Working set: the first M suite matrices, scaled down so plan builds
  // dominate only the first touch of each (matrix, format) pair.
  const auto& suite = sparse::suite_entries();
  std::vector<std::string> ids;
  std::vector<index_t> cols;
  std::size_t total_rows = 0;
  for (int i = 0; i < n_matrices; ++i) {
    const auto& entry = suite[static_cast<std::size_t>(i) % suite.size()];
    auto m = std::make_shared<core::Matrix>(core::Matrix::from_csr(
        sparse::generate_suite_matrix(entry, scale)));
    std::cout << "matrix " << entry.name << ": " << m->rows() << " x "
              << m->cols() << ", nnz " << m->nnz() << '\n';
    ids.push_back(entry.name);
    cols.push_back(m->cols());
    total_rows += static_cast<std::size_t>(m->rows());
    server.add_matrix(entry.name, std::move(m));
  }
  (void)total_rows;

  std::atomic<std::size_t> served_rows{0};
  std::atomic<int> submitting{clients};
  auto client = [&](int c) {
    Rng rng(seed + static_cast<std::uint64_t>(c) * 7919);
    std::vector<std::future<std::vector<value_t>>> pending;
    for (long r = 0; r < requests; ++r) {
      const std::size_t m = static_cast<std::size_t>(r) % ids.size();
      std::vector<value_t> x(static_cast<std::size_t>(cols[m]));
      for (auto& v : x) v = rng.uniform() * 2 - 1;
      for (;;) {
        try {
          // Copy per attempt: submit takes x by value, so a rejection
          // would otherwise leave the retry with a moved-from (empty) x.
          std::vector<value_t> attempt = x;
          pending.push_back(server.submit(ids[m], std::move(attempt),
                                          "client-" + std::to_string(c)));
          break;
        } catch (const serve::RejectedError&) {
          // Backpressure: help (synchronous mode) or back off and retry.
          if (opts.threads == 0)
            server.poll_once();
          else
            std::this_thread::yield();
        }
      }
      if (opts.threads == 0 && pending.size() % 16 == 0) server.poll_once();
    }
    submitting.fetch_sub(1);
    // Synchronous mode: serve whatever is still queued before waiting, or
    // f.get() below would block on a future nobody is going to fulfil.
    if (opts.threads == 0)
      while (server.poll_once()) {}
    for (auto& f : pending) served_rows += f.get().size();
  };

  Timer wall;
  if (opts.threads == 0 && clients == 1) {
    client(0); // fully deterministic single-threaded mode
    server.drain();
  } else {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) threads.emplace_back(client, c);
    if (opts.threads == 0) {
      // Clients only enqueue; serve here until every submit has landed and
      // the queue stays empty (once submitting hits 0 it can only shrink).
      while (submitting.load() > 0 || server.poll_once())
        if (!server.poll_once()) std::this_thread::yield();
      server.drain();
    }
    for (auto& t : threads) t.join();
    if (opts.threads > 0) server.drain();
  }
  const double secs = wall.seconds();

  const auto m = server.metrics();
  const long total = static_cast<long>(clients) * requests;
  std::cout << "\nserved    " << m.served << " / " << total << " requests in "
            << secs << " s (" << double(m.served) / secs << " req/s, "
            << double(served_rows.load()) / secs << " rows/s)\n"
            << "rejected  " << m.rejected << " submits bounced (retried): "
            << m.shed << " shed, " << m.throttled << " throttled\n"
            << "batches   " << m.batches << " (" << m.sharded_batches
            << " sharded), mean size " << m.batch_sizes.mean() << ", max "
            << m.batch_sizes.max() << '\n'
            << "cache     " << m.cache.hits << " hits, " << m.cache.misses
            << " misses, " << m.cache.evictions << " evictions, "
            << m.cache.resident_bytes << " B resident\n"
            << "wait      " << m.queue_wait.summary() << '\n'
            << "execute   " << m.execute.summary() << '\n';
  for (const auto& [name, h] : m.latency_by_format)
    std::cout << "latency   " << name << " batch " << h.summary() << '\n';
  if (m.failed) {
    std::cerr << m.failed << " requests failed\n";
    return 1;
  }
  return check_slo(args, m.queue_wait.percentile(99), m.execute.percentile(99));
}

/// `serve`: the TCP daemon — an SpmvServer behind a NetServer event loop.
/// Matrices arrive over the wire (UPLOAD_MATRIX); runs until a client
/// sends DRAIN. --port-file publishes the bound port (for --port 0).
int cmd_serve(const Args& args) {
  serve::SpmvServer server(server_options_from(args));

  net::NetServerOptions nopts;
  nopts.listen = args.get("listen", nopts.listen);
  nopts.port = static_cast<int>(args.get_long("port", 0));
  net::NetServer net_server(server, nopts);

  if (args.has("port-file")) {
    const std::string path = args.get("port-file", "");
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    out << net_server.port() << '\n';
  }
  std::cout << "listening on " << nopts.listen << ":" << net_server.port()
            << std::endl;

  net_server.run();

  const auto m = server.metrics();
  const auto ns = net_server.stats();
  std::cout << "drained: served " << m.served << ", rejected " << m.rejected
            << " (" << m.shed << " shed, " << m.throttled << " throttled), "
            << "failed " << m.failed << '\n'
            << "net: " << ns.accepted << " connections, " << ns.frames_in
            << " frames in, " << ns.frames_out << " out, "
            << ns.protocol_errors << " protocol errors\n"
            << "wait      " << m.queue_wait.summary() << '\n'
            << "execute   " << m.execute.summary() << '\n';
  return 0;
}

/// `net-bench`: the loopback load generator. Uploads a suite working set,
/// spot-checks wire answers bitwise against an in-process SpmvServer fed
/// the same .bro bytes, then drives C client threads with a W-deep
/// pipeline each, retrying rejections. Client-side rejection tallies must
/// reconcile exactly with the server's STATS counter deltas, and
/// round-trip p50/p99 is reported next to the server's queue-wait /
/// execute percentiles so latency can be attributed.
int cmd_net_bench(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  int port = static_cast<int>(args.get_long("port", 0));
  if (port == 0 && args.has("port-file")) {
    // The daemon publishes its bound port; poll briefly for startup.
    const std::string path = args.get("port-file", "");
    for (int i = 0; i < 100 && port == 0; ++i) {
      std::ifstream in(path);
      if (!(in >> port))
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (port == 0)
      throw std::runtime_error("no port in " + path + " after 10 s");
  }
  if (port <= 0) throw std::runtime_error("net-bench needs --port or --port-file");

  const int clients = static_cast<int>(args.get_long("clients", 4));
  const long requests = args.get_long("requests", 200); // per client
  const int window = static_cast<int>(args.get_long("window", 4));
  const int n_matrices = static_cast<int>(args.get_long("matrices", 2));
  const double scale = args.get_double("scale", 0.05);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_long("seed", 2013));
  const auto& fmt = parse_format(args.get("format", "BRO-HYB"));
  const bool verify = !args.has("no-verify");
  if (clients < 1 || requests < 1 || n_matrices < 1 || window < 1)
    throw std::runtime_error(
        "--clients, --requests, --matrices and --window must be >= 1");

  // Working set: suite matrices serialized to the wire format the daemon
  // will parse (exactly the bytes `compress` would write).
  struct Mat {
    std::string id;
    index_t cols = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Mat> mats;
  const auto& suite = sparse::suite_entries();
  for (int i = 0; i < n_matrices; ++i) {
    const auto& entry = suite[static_cast<std::size_t>(i) % suite.size()];
    const auto m = core::Matrix::from_csr(
        sparse::generate_suite_matrix(entry, scale));
    Mat mat;
    mat.id = entry.name;
    mat.cols = m.cols();
    mat.bytes = net::matrix_to_bro_bytes(m, fmt.format);
    std::cout << "matrix " << entry.name << ": " << m.rows() << " x "
              << m.cols() << ", nnz " << m.nnz() << ", wire "
              << mat.bytes.size() << " B (" << fmt.name << ")\n";
    mats.push_back(std::move(mat));
  }

  net::NetClient admin(host, port);
  admin.ping();
  for (const auto& mat : mats) {
    const auto ack = admin.upload_matrix(mat.id, mat.bytes);
    if (ack.cols != static_cast<std::uint64_t>(mat.cols))
      throw std::runtime_error("upload ack dims mismatch for " + mat.id);
  }

  // Bitwise spot check: an in-process SpmvServer fed the same .bro bytes
  // must produce the same y as the wire round-trip, bit for bit. Assumes
  // the daemon runs default server options (pass --no-verify otherwise).
  if (verify) {
    serve::ServerOptions lopts;
    lopts.threads = 0;
    serve::SpmvServer local(lopts);
    Rng rng(seed ^ 0x5f5f5f5f);
    for (const auto& mat : mats) {
      local.add_matrix(mat.id, net::matrix_from_bro_bytes(mat.bytes));
      std::vector<value_t> x(static_cast<std::size_t>(mat.cols));
      for (auto& v : x) v = rng.uniform() * 2 - 1;
      auto fut = local.submit(mat.id, x);
      while (local.poll_once()) {}
      const std::vector<value_t> want = fut.get();
      const std::vector<value_t> got = admin.submit(mat.id, x);
      if (want != got)
        throw std::runtime_error("wire y differs from in-process y for " +
                                 mat.id + " (bitwise check)");
    }
    std::cout << "verify    wire == in-process (bitwise) on " << mats.size()
              << " matrices\n";
  }

  const net::StatsSnapshot before = admin.stats();

  struct Tally {
    std::uint64_t ok = 0, queue_full = 0, shed = 0, throttled = 0, other = 0;
    Histogram rtt = Histogram::exponential(1e-6, 10.0, 2.0); // seconds
  };
  std::vector<Tally> tallies(static_cast<std::size_t>(clients));
  std::atomic<bool> failed{false};

  auto client_fn = [&](int c) {
    using clock = std::chrono::steady_clock;
    Tally& tally = tallies[static_cast<std::size_t>(c)];
    try {
      net::NetClient cli(host, port);
      Rng rng(seed + static_cast<std::uint64_t>(c) * 7919);
      struct InFlight {
        std::uint64_t rid;
        clock::time_point start;
        std::size_t mat;
        std::vector<value_t> x; // kept for retry on rejection
      };
      std::deque<InFlight> inflight;

      const auto complete_front = [&] {
        InFlight f = std::move(inflight.front());
        inflight.pop_front();
        auto res = cli.wait_submit(f.rid);
        for (;;) {
          if (res.ok()) {
            tally.rtt.add(std::chrono::duration<double>(clock::now() - f.start)
                              .count());
            ++tally.ok;
            return;
          }
          switch (res.status) {
            case net::Status::kQueueFull: ++tally.queue_full; break;
            case net::Status::kShed: ++tally.shed; break;
            case net::Status::kThrottled: ++tally.throttled; break;
            default:
              ++tally.other;
              failed.store(true);
              return; // not a backpressure signal: do not retry
          }
          // Typed backpressure: back off and resubmit the same x.
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          const std::uint64_t rid =
              cli.enqueue_submit(mats[f.mat].id, f.x,
                                 "client-" + std::to_string(c));
          cli.flush();
          res = cli.wait_submit(rid);
        }
      };

      for (long r = 0; r < requests; ++r) {
        while (inflight.size() >= static_cast<std::size_t>(window))
          complete_front();
        InFlight f;
        f.mat = static_cast<std::size_t>(r) % mats.size();
        f.x.resize(static_cast<std::size_t>(mats[f.mat].cols));
        for (auto& v : f.x) v = rng.uniform() * 2 - 1;
        f.rid = cli.enqueue_submit(mats[f.mat].id, f.x,
                                   "client-" + std::to_string(c));
        cli.flush();
        f.start = clock::now();
        inflight.push_back(std::move(f));
      }
      while (!inflight.empty()) complete_front();
    } catch (const std::exception& e) {
      std::cerr << "client " << c << ": " << e.what() << '\n';
      failed.store(true);
    }
  };

  Timer wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) threads.emplace_back(client_fn, c);
  for (auto& t : threads) t.join();
  const double secs = wall.seconds();

  const net::StatsSnapshot after = admin.stats();
  if (args.has("drain")) admin.drain();

  Tally total;
  Histogram rtt = Histogram::exponential(1e-6, 10.0, 2.0);
  for (const auto& t : tallies) {
    total.ok += t.ok;
    total.queue_full += t.queue_full;
    total.shed += t.shed;
    total.throttled += t.throttled;
    total.other += t.other;
    rtt.merge(t.rtt);
  }

  std::cout << "\nserved    " << total.ok << " / "
            << static_cast<long>(clients) * requests << " requests in " << secs
            << " s (" << double(total.ok) / secs << " req/s, " << clients
            << " clients, window " << window << ")\n"
            << "rejected  " << total.queue_full << " queue-full, "
            << total.shed << " shed, " << total.throttled
            << " throttled (all retried), " << total.other << " other\n"
            << "rtt       p50 " << rtt.percentile(50) * 1e3 << " ms, p99 "
            << rtt.percentile(99) * 1e3 << " ms, mean " << rtt.mean() * 1e3
            << " ms (client round-trip)\n"
            << "server    wait p50 " << after.wait_p50 * 1e3 << " ms, p99 "
            << after.wait_p99 * 1e3 << " ms; execute p50 "
            << after.exec_p50 * 1e3 << " ms, p99 " << after.exec_p99 * 1e3
            << " ms\n";

  // Reconcile: every typed rejection the clients counted must appear in
  // the server's per-cause counters, and vice versa — the wire protocol
  // may not lose or misclassify a single refusal.
  bool ok = !failed.load();
  const auto delta = [](std::uint64_t a, std::uint64_t b) { return a - b; };
  const struct {
    const char* name;
    std::uint64_t server, client;
  } checks[] = {
      {"queue-full", delta(after.queue_full, before.queue_full),
       total.queue_full},
      {"shed", delta(after.shed, before.shed), total.shed},
      {"throttled", delta(after.throttled, before.throttled), total.throttled},
      {"served", delta(after.served, before.served), total.ok},
  };
  for (const auto& c : checks) {
    if (c.server == c.client) continue;
    std::cerr << "RECONCILE FAIL: " << c.name << " server delta " << c.server
              << " != client count " << c.client << '\n';
    ok = false;
  }
  if (ok)
    std::cout << "reconcile OK: queue-full/shed/throttled/served counters "
                 "match the STATS deltas\n";
  if (total.other) {
    std::cerr << total.other << " requests failed with non-backpressure "
                               "statuses\n";
    ok = false;
  }
  if (!ok) return 1;
  return check_slo(args, after.wait_p99, after.exec_p99);
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string cmd = args.positional().front();
    if (cmd == "info" && args.positional().size() == 2) return cmd_info(args);
    if (cmd == "formats" && args.positional().size() == 1)
      return cmd_formats();
    if (cmd == "compress" && args.positional().size() == 3)
      return cmd_compress(args);
    if (cmd == "spmv" && args.positional().size() == 2) return cmd_spmv(args);
    if (cmd == "tune" && args.positional().size() == 2) return cmd_tune(args);
    if (cmd == "bench" && args.positional().size() == 1 && args.has("decode"))
      return cmd_bench_decode(args);
    if (cmd == "bench" && args.positional().size() == 2) return cmd_bench(args);
    if (cmd == "fuzz" && args.positional().size() == 1) return cmd_fuzz(args);
    if (cmd == "cpuinfo" && args.positional().size() == 1)
      return cmd_cpuinfo(args);
    if (cmd == "entropy-bench" && args.positional().size() == 1)
      return cmd_entropy_bench(args);
    if (cmd == "block-bench" && args.positional().size() == 1)
      return cmd_block_bench(args);
    if (cmd == "serve-bench" && args.positional().size() == 1)
      return cmd_serve_bench(args);
    if (cmd == "serve" && args.positional().size() == 1)
      return cmd_serve(args);
    if (cmd == "net-bench" && args.positional().size() == 1)
      return cmd_net_bench(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "brospmv: " << e.what() << '\n';
    return 1;
  }
}
