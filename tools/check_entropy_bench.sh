#!/bin/sh
# Entropy-coding gate as a ctest entry: BRO-ANS must beat BRO-ELL's mean
# index space savings on Test Set 1, and its dispatched decode throughput
# must stay within the slowdown budget (geomean over the suite). The
# budget defaults to the binary's: 1.5x when the active ISA is AVX2 (the
# vector tANS decoder — the design target is the budget), 4x on scalar/
# SSE4 hosts still decoding on the chain-interleaved scalar path (headroom
# above the measured 2.5-3x band, see EXPERIMENTS.md). Override with
# BRO_ANS_MAX_SLOWDOWN to tighten or loosen locally.
# Usage: check_entropy_bench.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_entropy_bench.sh /path/to/brospmv}

echo "== entropy gate (savings + decode A/B) =="
if [ -n "${BRO_ANS_MAX_SLOWDOWN:-}" ]; then
  "$BROSPMV" entropy-bench --scale 0.0625 --min-time 0.01 --gate \
      --max-slowdown "$BRO_ANS_MAX_SLOWDOWN"
else
  "$BROSPMV" entropy-bench --scale 0.0625 --min-time 0.01 --gate
fi

echo "check_entropy_bench: OK"
