#!/bin/sh
# Blocked-format gate as a ctest entry: on the truss-FEM workload (Test
# Set 3) BRO-BCSR must beat BRO-ELL's mean fill-adjusted index savings AND
# hold the geomean index-decode speedup floor (1.5x rows/s — the
# one-index-per-block stream decodes ~block-area fewer symbols per matrix
# row, so the floor holds on every ISA). The gate also sweeps the
# adversarial battery bitwise across scalar/SSE4/AVX2 at every forced
# shape and symbol length, and asserts no Test Set 1 matrix auto-selects
# the blocked format. Override the floor with BRO_BCSR_MIN_SPEEDUP.
# Usage: check_block_bench.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_block_bench.sh /path/to/brospmv}

echo "== block gate (savings + decode A/B + parity + auto-select) =="
if [ -n "${BRO_BCSR_MIN_SPEEDUP:-}" ]; then
  "$BROSPMV" block-bench --scale 0.0625 --min-time 0.01 --gate \
      --min-speedup "$BRO_BCSR_MIN_SPEEDUP"
else
  "$BROSPMV" block-bench --scale 0.0625 --min-time 0.01 --gate
fi

echo "check_block_bench: OK"
