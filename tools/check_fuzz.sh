#!/bin/sh
# Bounded differential-fuzz ctest entry: a fixed seed and a small round
# count so the sweep is deterministic and fast enough for every CI run.
# (Longer sweeps: `brospmv fuzz --rounds 500 --seed $RANDOM`, ideally from
# the `asan` CMake preset.)
# Also checks that numeric options reject trailing garbage — the Args
# parser must not read "3abc" as 3.
# Usage: check_fuzz.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_fuzz.sh /path/to/brospmv}

echo "== fuzz (fixed seed) =="
"$BROSPMV" fuzz --rounds 12 --seed 2013 --quiet

echo "== malformed numeric option must fail =="
if "$BROSPMV" fuzz --rounds 3abc --seed 2013 2>err.txt; then
  echo "FAIL: --rounds 3abc was accepted"
  exit 1
fi
grep -q "expects an integer" err.txt
rm -f err.txt

echo "check_fuzz: OK"
