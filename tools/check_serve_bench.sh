#!/bin/sh
# End-to-end smoke of the serving layer through the CLI: a synchronous
# (deterministic) run, a threaded run, a tiny-queue run that must exercise
# the RejectedError backpressure path without losing a request, and a
# sharded multi-pool run whose batches must all take the sharded path.
# Usage: check_serve_bench.sh /path/to/brospmv
set -eu

BROSPMV=${1:?usage: check_serve_bench.sh /path/to/brospmv}

echo "== serve-bench (synchronous, deterministic) =="
"$BROSPMV" serve-bench --threads 0 --clients 1 --requests 48 --matrices 2 \
    --scale 0.02 --seed 2013 >out.txt
cat out.txt
grep -q "served    48 / 48 requests" out.txt

echo "== serve-bench (worker pool) =="
"$BROSPMV" serve-bench --threads 2 --clients 3 --requests 40 --matrices 2 \
    --scale 0.02 --seed 7 >out.txt
cat out.txt
grep -q "served    120 / 120 requests" out.txt

echo "== serve-bench (forced format, pinned cache) =="
"$BROSPMV" serve-bench --threads 1 --clients 2 --requests 30 --matrices 3 \
    --scale 0.02 --format BRO-ELL --cache-mb 1 --seed 11 >out.txt
cat out.txt
grep -q "served    60 / 60 requests" out.txt
grep -q "latency   BRO-ELL" out.txt

echo "== serve-bench (sharded multi-pool) =="
"$BROSPMV" serve-bench --threads 1 --clients 2 --requests 30 --matrices 1 \
    --scale 0.02 --format CSR --pools 2 --pool-threads 1 --pool-omp 1 \
    --shards 3 --shard-min-nnz 1 --seed 17 >out.txt
cat out.txt
grep -q "served    60 / 60 requests" out.txt
# Every batch must have taken the sharded path: "batches N (N sharded)".
grep -Eq "batches   ([0-9]+) \(\1 sharded\)" out.txt
grep -q "wait      p50=" out.txt
grep -q "execute   p50=" out.txt

echo "== unknown format must fail =="
if "$BROSPMV" serve-bench --format NO-SUCH 2>err.txt; then
  echo "FAIL: --format NO-SUCH was accepted"
  exit 1
fi
grep -q "unknown --format" err.txt
rm -f out.txt err.txt

echo "check_serve_bench: OK"
