# Empty dependencies file for bench_solver_pipeline.
# This may be replaced when dependencies are built.
