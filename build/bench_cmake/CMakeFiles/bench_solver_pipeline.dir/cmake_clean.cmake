file(REMOVE_RECURSE
  "../bench/bench_solver_pipeline"
  "../bench/bench_solver_pipeline.pdb"
  "CMakeFiles/bench_solver_pipeline.dir/bench_solver_pipeline.cpp.o"
  "CMakeFiles/bench_solver_pipeline.dir/bench_solver_pipeline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
