file(REMOVE_RECURSE
  "../bench/bench_fig4_broell"
  "../bench/bench_fig4_broell.pdb"
  "CMakeFiles/bench_fig4_broell.dir/bench_fig4_broell.cpp.o"
  "CMakeFiles/bench_fig4_broell.dir/bench_fig4_broell.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_broell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
