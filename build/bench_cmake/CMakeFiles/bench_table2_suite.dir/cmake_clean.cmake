file(REMOVE_RECURSE
  "../bench/bench_table2_suite"
  "../bench/bench_table2_suite.pdb"
  "CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cpp.o"
  "CMakeFiles/bench_table2_suite.dir/bench_table2_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
