file(REMOVE_RECURSE
  "../bench/bench_fig7_brocoo"
  "../bench/bench_fig7_brocoo.pdb"
  "CMakeFiles/bench_fig7_brocoo.dir/bench_fig7_brocoo.cpp.o"
  "CMakeFiles/bench_fig7_brocoo.dir/bench_fig7_brocoo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_brocoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
