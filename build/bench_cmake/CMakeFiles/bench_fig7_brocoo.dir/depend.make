# Empty dependencies file for bench_fig7_brocoo.
# This may be replaced when dependencies are built.
