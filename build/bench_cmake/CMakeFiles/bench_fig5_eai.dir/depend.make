# Empty dependencies file for bench_fig5_eai.
# This may be replaced when dependencies are built.
