file(REMOVE_RECURSE
  "../bench/bench_fig5_eai"
  "../bench/bench_fig5_eai.pdb"
  "CMakeFiles/bench_fig5_eai.dir/bench_fig5_eai.cpp.o"
  "CMakeFiles/bench_fig5_eai.dir/bench_fig5_eai.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_eai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
