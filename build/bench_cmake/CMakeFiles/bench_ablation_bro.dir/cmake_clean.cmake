file(REMOVE_RECURSE
  "../bench/bench_ablation_bro"
  "../bench/bench_ablation_bro.pdb"
  "CMakeFiles/bench_ablation_bro.dir/bench_ablation_bro.cpp.o"
  "CMakeFiles/bench_ablation_bro.dir/bench_ablation_bro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
