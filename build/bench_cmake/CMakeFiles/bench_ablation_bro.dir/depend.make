# Empty dependencies file for bench_ablation_bro.
# This may be replaced when dependencies are built.
