file(REMOVE_RECURSE
  "../bench/bench_table1_devices"
  "../bench/bench_table1_devices.pdb"
  "CMakeFiles/bench_table1_devices.dir/bench_table1_devices.cpp.o"
  "CMakeFiles/bench_table1_devices.dir/bench_table1_devices.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
