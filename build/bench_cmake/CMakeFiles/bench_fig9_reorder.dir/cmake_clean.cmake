file(REMOVE_RECURSE
  "../bench/bench_fig9_reorder"
  "../bench/bench_fig9_reorder.pdb"
  "CMakeFiles/bench_fig9_reorder.dir/bench_fig9_reorder.cpp.o"
  "CMakeFiles/bench_fig9_reorder.dir/bench_fig9_reorder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
