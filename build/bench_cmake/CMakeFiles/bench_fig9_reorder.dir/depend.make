# Empty dependencies file for bench_fig9_reorder.
# This may be replaced when dependencies are built.
