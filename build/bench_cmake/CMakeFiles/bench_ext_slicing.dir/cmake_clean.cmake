file(REMOVE_RECURSE
  "../bench/bench_ext_slicing"
  "../bench/bench_ext_slicing.pdb"
  "CMakeFiles/bench_ext_slicing.dir/bench_ext_slicing.cpp.o"
  "CMakeFiles/bench_ext_slicing.dir/bench_ext_slicing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_slicing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
