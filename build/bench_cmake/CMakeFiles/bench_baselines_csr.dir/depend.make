# Empty dependencies file for bench_baselines_csr.
# This may be replaced when dependencies are built.
