file(REMOVE_RECURSE
  "../bench/bench_baselines_csr"
  "../bench/bench_baselines_csr.pdb"
  "CMakeFiles/bench_baselines_csr.dir/bench_baselines_csr.cpp.o"
  "CMakeFiles/bench_baselines_csr.dir/bench_baselines_csr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
