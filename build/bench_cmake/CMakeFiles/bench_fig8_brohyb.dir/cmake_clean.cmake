file(REMOVE_RECURSE
  "../bench/bench_fig8_brohyb"
  "../bench/bench_fig8_brohyb.pdb"
  "CMakeFiles/bench_fig8_brohyb.dir/bench_fig8_brohyb.cpp.o"
  "CMakeFiles/bench_fig8_brohyb.dir/bench_fig8_brohyb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_brohyb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
