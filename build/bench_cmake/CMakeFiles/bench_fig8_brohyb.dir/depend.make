# Empty dependencies file for bench_fig8_brohyb.
# This may be replaced when dependencies are built.
