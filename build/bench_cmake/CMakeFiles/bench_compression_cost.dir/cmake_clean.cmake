file(REMOVE_RECURSE
  "../bench/bench_compression_cost"
  "../bench/bench_compression_cost.pdb"
  "CMakeFiles/bench_compression_cost.dir/bench_compression_cost.cpp.o"
  "CMakeFiles/bench_compression_cost.dir/bench_compression_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
