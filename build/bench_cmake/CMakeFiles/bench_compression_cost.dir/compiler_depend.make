# Empty compiler generated dependencies file for bench_compression_cost.
# This may be replaced when dependencies are built.
