file(REMOVE_RECURSE
  "../bench/bench_model_breakdown"
  "../bench/bench_model_breakdown.pdb"
  "CMakeFiles/bench_model_breakdown.dir/bench_model_breakdown.cpp.o"
  "CMakeFiles/bench_model_breakdown.dir/bench_model_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
