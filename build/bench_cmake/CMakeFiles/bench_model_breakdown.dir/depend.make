# Empty dependencies file for bench_model_breakdown.
# This may be replaced when dependencies are built.
