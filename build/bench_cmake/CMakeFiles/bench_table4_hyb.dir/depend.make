# Empty dependencies file for bench_table4_hyb.
# This may be replaced when dependencies are built.
