file(REMOVE_RECURSE
  "../bench/bench_table4_hyb"
  "../bench/bench_table4_hyb.pdb"
  "CMakeFiles/bench_table4_hyb.dir/bench_table4_hyb.cpp.o"
  "CMakeFiles/bench_table4_hyb.dir/bench_table4_hyb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hyb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
