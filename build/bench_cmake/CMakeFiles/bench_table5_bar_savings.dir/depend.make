# Empty dependencies file for bench_table5_bar_savings.
# This may be replaced when dependencies are built.
