file(REMOVE_RECURSE
  "../bench/bench_table5_bar_savings"
  "../bench/bench_table5_bar_savings.pdb"
  "CMakeFiles/bench_table5_bar_savings.dir/bench_table5_bar_savings.cpp.o"
  "CMakeFiles/bench_table5_bar_savings.dir/bench_table5_bar_savings.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_bar_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
