file(REMOVE_RECURSE
  "../tools/brospmv"
  "../tools/brospmv.pdb"
  "CMakeFiles/brospmv.dir/brospmv.cpp.o"
  "CMakeFiles/brospmv.dir/brospmv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brospmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
