# Empty compiler generated dependencies file for brospmv.
# This may be replaced when dependencies are built.
