file(REMOVE_RECURSE
  "../examples/heat_equation"
  "../examples/heat_equation.pdb"
  "CMakeFiles/heat_equation.dir/heat_equation.cpp.o"
  "CMakeFiles/heat_equation.dir/heat_equation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_equation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
