file(REMOVE_RECURSE
  "../examples/format_explorer"
  "../examples/format_explorer.pdb"
  "CMakeFiles/format_explorer.dir/format_explorer.cpp.o"
  "CMakeFiles/format_explorer.dir/format_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
