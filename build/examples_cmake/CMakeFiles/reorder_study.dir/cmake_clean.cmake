file(REMOVE_RECURSE
  "../examples/reorder_study"
  "../examples/reorder_study.pdb"
  "CMakeFiles/reorder_study.dir/reorder_study.cpp.o"
  "CMakeFiles/reorder_study.dir/reorder_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
