# Empty compiler generated dependencies file for reorder_study.
# This may be replaced when dependencies are built.
