file(REMOVE_RECURSE
  "../examples/autotune_demo"
  "../examples/autotune_demo.pdb"
  "CMakeFiles/autotune_demo.dir/autotune_demo.cpp.o"
  "CMakeFiles/autotune_demo.dir/autotune_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
