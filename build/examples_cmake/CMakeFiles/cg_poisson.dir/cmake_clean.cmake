file(REMOVE_RECURSE
  "../examples/cg_poisson"
  "../examples/cg_poisson.pdb"
  "CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o"
  "CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
