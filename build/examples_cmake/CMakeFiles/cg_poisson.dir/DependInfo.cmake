
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cg_poisson.cpp" "examples_cmake/CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o" "gcc" "examples_cmake/CMakeFiles/cg_poisson.dir/cg_poisson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/bro_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/bro_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/bro_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bro_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/bro_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/bro_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
