# CMake generated Testfile for 
# Source directory: /root/repo/cuda
# Build directory: /root/repo/build/cuda_cmake
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
