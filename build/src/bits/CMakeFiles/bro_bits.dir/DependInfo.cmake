
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bits/bit_string.cpp" "src/bits/CMakeFiles/bro_bits.dir/bit_string.cpp.o" "gcc" "src/bits/CMakeFiles/bro_bits.dir/bit_string.cpp.o.d"
  "/root/repo/src/bits/delta.cpp" "src/bits/CMakeFiles/bro_bits.dir/delta.cpp.o" "gcc" "src/bits/CMakeFiles/bro_bits.dir/delta.cpp.o.d"
  "/root/repo/src/bits/mux.cpp" "src/bits/CMakeFiles/bro_bits.dir/mux.cpp.o" "gcc" "src/bits/CMakeFiles/bro_bits.dir/mux.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
