# Empty dependencies file for bro_bits.
# This may be replaced when dependencies are built.
