file(REMOVE_RECURSE
  "libbro_bits.a"
)
