file(REMOVE_RECURSE
  "CMakeFiles/bro_bits.dir/bit_string.cpp.o"
  "CMakeFiles/bro_bits.dir/bit_string.cpp.o.d"
  "CMakeFiles/bro_bits.dir/delta.cpp.o"
  "CMakeFiles/bro_bits.dir/delta.cpp.o.d"
  "CMakeFiles/bro_bits.dir/mux.cpp.o"
  "CMakeFiles/bro_bits.dir/mux.cpp.o.d"
  "libbro_bits.a"
  "libbro_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
