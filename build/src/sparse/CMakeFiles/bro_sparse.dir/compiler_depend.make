# Empty compiler generated dependencies file for bro_sparse.
# This may be replaced when dependencies are built.
