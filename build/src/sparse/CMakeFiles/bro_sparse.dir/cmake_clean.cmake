file(REMOVE_RECURSE
  "CMakeFiles/bro_sparse.dir/convert.cpp.o"
  "CMakeFiles/bro_sparse.dir/convert.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/coo.cpp.o"
  "CMakeFiles/bro_sparse.dir/coo.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/csr.cpp.o"
  "CMakeFiles/bro_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/ell.cpp.o"
  "CMakeFiles/bro_sparse.dir/ell.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/hyb.cpp.o"
  "CMakeFiles/bro_sparse.dir/hyb.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/matgen/generators.cpp.o"
  "CMakeFiles/bro_sparse.dir/matgen/generators.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/matgen/suite.cpp.o"
  "CMakeFiles/bro_sparse.dir/matgen/suite.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/mmio.cpp.o"
  "CMakeFiles/bro_sparse.dir/mmio.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/spmv.cpp.o"
  "CMakeFiles/bro_sparse.dir/spmv.cpp.o.d"
  "CMakeFiles/bro_sparse.dir/stats.cpp.o"
  "CMakeFiles/bro_sparse.dir/stats.cpp.o.d"
  "libbro_sparse.a"
  "libbro_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
