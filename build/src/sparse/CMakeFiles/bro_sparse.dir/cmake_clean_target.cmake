file(REMOVE_RECURSE
  "libbro_sparse.a"
)
