
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/convert.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/convert.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/convert.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/coo.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/csr.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/csr.cpp.o.d"
  "/root/repo/src/sparse/ell.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/ell.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/ell.cpp.o.d"
  "/root/repo/src/sparse/hyb.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/hyb.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/hyb.cpp.o.d"
  "/root/repo/src/sparse/matgen/generators.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/matgen/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/matgen/generators.cpp.o.d"
  "/root/repo/src/sparse/matgen/suite.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/matgen/suite.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/matgen/suite.cpp.o.d"
  "/root/repo/src/sparse/mmio.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/mmio.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/mmio.cpp.o.d"
  "/root/repo/src/sparse/spmv.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/spmv.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/spmv.cpp.o.d"
  "/root/repo/src/sparse/stats.cpp" "src/sparse/CMakeFiles/bro_sparse.dir/stats.cpp.o" "gcc" "src/sparse/CMakeFiles/bro_sparse.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
