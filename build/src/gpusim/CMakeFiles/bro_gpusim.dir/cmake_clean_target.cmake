file(REMOVE_RECURSE
  "libbro_gpusim.a"
)
