file(REMOVE_RECURSE
  "CMakeFiles/bro_gpusim.dir/device.cpp.o"
  "CMakeFiles/bro_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/bro_gpusim.dir/lru_cache.cpp.o"
  "CMakeFiles/bro_gpusim.dir/lru_cache.cpp.o.d"
  "CMakeFiles/bro_gpusim.dir/sim.cpp.o"
  "CMakeFiles/bro_gpusim.dir/sim.cpp.o.d"
  "libbro_gpusim.a"
  "libbro_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
