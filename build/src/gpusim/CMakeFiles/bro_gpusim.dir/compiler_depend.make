# Empty compiler generated dependencies file for bro_gpusim.
# This may be replaced when dependencies are built.
