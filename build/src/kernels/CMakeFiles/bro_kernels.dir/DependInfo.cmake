
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/autotune.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/autotune.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/autotune.cpp.o.d"
  "/root/repo/src/kernels/native_spmv.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/native_spmv.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/native_spmv.cpp.o.d"
  "/root/repo/src/kernels/sim_spmv_coo.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_coo.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_coo.cpp.o.d"
  "/root/repo/src/kernels/sim_spmv_csr.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_csr.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_csr.cpp.o.d"
  "/root/repo/src/kernels/sim_spmv_ell.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_ell.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_ell.cpp.o.d"
  "/root/repo/src/kernels/sim_spmv_ext.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_ext.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_ext.cpp.o.d"
  "/root/repo/src/kernels/sim_spmv_hyb.cpp" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_hyb.cpp.o" "gcc" "src/kernels/CMakeFiles/bro_kernels.dir/sim_spmv_hyb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bro_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/bits/CMakeFiles/bro_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/bro_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
