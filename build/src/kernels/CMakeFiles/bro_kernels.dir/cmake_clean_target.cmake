file(REMOVE_RECURSE
  "libbro_kernels.a"
)
