file(REMOVE_RECURSE
  "CMakeFiles/bro_kernels.dir/autotune.cpp.o"
  "CMakeFiles/bro_kernels.dir/autotune.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/native_spmv.cpp.o"
  "CMakeFiles/bro_kernels.dir/native_spmv.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/sim_spmv_coo.cpp.o"
  "CMakeFiles/bro_kernels.dir/sim_spmv_coo.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/sim_spmv_csr.cpp.o"
  "CMakeFiles/bro_kernels.dir/sim_spmv_csr.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/sim_spmv_ell.cpp.o"
  "CMakeFiles/bro_kernels.dir/sim_spmv_ell.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/sim_spmv_ext.cpp.o"
  "CMakeFiles/bro_kernels.dir/sim_spmv_ext.cpp.o.d"
  "CMakeFiles/bro_kernels.dir/sim_spmv_hyb.cpp.o"
  "CMakeFiles/bro_kernels.dir/sim_spmv_hyb.cpp.o.d"
  "libbro_kernels.a"
  "libbro_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
