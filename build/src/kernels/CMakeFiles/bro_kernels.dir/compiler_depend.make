# Empty compiler generated dependencies file for bro_kernels.
# This may be replaced when dependencies are built.
