# Empty compiler generated dependencies file for bro_solver.
# This may be replaced when dependencies are built.
