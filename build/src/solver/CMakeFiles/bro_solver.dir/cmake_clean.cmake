file(REMOVE_RECURSE
  "CMakeFiles/bro_solver.dir/bicgstab.cpp.o"
  "CMakeFiles/bro_solver.dir/bicgstab.cpp.o.d"
  "CMakeFiles/bro_solver.dir/cg.cpp.o"
  "CMakeFiles/bro_solver.dir/cg.cpp.o.d"
  "CMakeFiles/bro_solver.dir/gmres.cpp.o"
  "CMakeFiles/bro_solver.dir/gmres.cpp.o.d"
  "libbro_solver.a"
  "libbro_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
