file(REMOVE_RECURSE
  "libbro_solver.a"
)
