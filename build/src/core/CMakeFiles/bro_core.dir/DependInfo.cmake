
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bar.cpp" "src/core/CMakeFiles/bro_core.dir/bar.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bar.cpp.o.d"
  "/root/repo/src/core/bro_coo.cpp" "src/core/CMakeFiles/bro_core.dir/bro_coo.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_coo.cpp.o.d"
  "/root/repo/src/core/bro_csr.cpp" "src/core/CMakeFiles/bro_core.dir/bro_csr.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_csr.cpp.o.d"
  "/root/repo/src/core/bro_ell.cpp" "src/core/CMakeFiles/bro_core.dir/bro_ell.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_ell.cpp.o.d"
  "/root/repo/src/core/bro_ell_values.cpp" "src/core/CMakeFiles/bro_core.dir/bro_ell_values.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_ell_values.cpp.o.d"
  "/root/repo/src/core/bro_ell_vector.cpp" "src/core/CMakeFiles/bro_core.dir/bro_ell_vector.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_ell_vector.cpp.o.d"
  "/root/repo/src/core/bro_hyb.cpp" "src/core/CMakeFiles/bro_core.dir/bro_hyb.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/bro_hyb.cpp.o.d"
  "/root/repo/src/core/matrix.cpp" "src/core/CMakeFiles/bro_core.dir/matrix.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/matrix.cpp.o.d"
  "/root/repo/src/core/savings.cpp" "src/core/CMakeFiles/bro_core.dir/savings.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/savings.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/core/CMakeFiles/bro_core.dir/serialize.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/serialize.cpp.o.d"
  "/root/repo/src/core/sliced_ell.cpp" "src/core/CMakeFiles/bro_core.dir/sliced_ell.cpp.o" "gcc" "src/core/CMakeFiles/bro_core.dir/sliced_ell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bits/CMakeFiles/bro_bits.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/bro_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
