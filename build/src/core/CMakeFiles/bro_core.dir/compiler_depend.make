# Empty compiler generated dependencies file for bro_core.
# This may be replaced when dependencies are built.
