file(REMOVE_RECURSE
  "libbro_core.a"
)
