file(REMOVE_RECURSE
  "CMakeFiles/bro_core.dir/bar.cpp.o"
  "CMakeFiles/bro_core.dir/bar.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_coo.cpp.o"
  "CMakeFiles/bro_core.dir/bro_coo.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_csr.cpp.o"
  "CMakeFiles/bro_core.dir/bro_csr.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_ell.cpp.o"
  "CMakeFiles/bro_core.dir/bro_ell.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_ell_values.cpp.o"
  "CMakeFiles/bro_core.dir/bro_ell_values.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_ell_vector.cpp.o"
  "CMakeFiles/bro_core.dir/bro_ell_vector.cpp.o.d"
  "CMakeFiles/bro_core.dir/bro_hyb.cpp.o"
  "CMakeFiles/bro_core.dir/bro_hyb.cpp.o.d"
  "CMakeFiles/bro_core.dir/matrix.cpp.o"
  "CMakeFiles/bro_core.dir/matrix.cpp.o.d"
  "CMakeFiles/bro_core.dir/savings.cpp.o"
  "CMakeFiles/bro_core.dir/savings.cpp.o.d"
  "CMakeFiles/bro_core.dir/serialize.cpp.o"
  "CMakeFiles/bro_core.dir/serialize.cpp.o.d"
  "CMakeFiles/bro_core.dir/sliced_ell.cpp.o"
  "CMakeFiles/bro_core.dir/sliced_ell.cpp.o.d"
  "libbro_core.a"
  "libbro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
