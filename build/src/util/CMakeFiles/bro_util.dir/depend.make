# Empty dependencies file for bro_util.
# This may be replaced when dependencies are built.
