file(REMOVE_RECURSE
  "CMakeFiles/bro_util.dir/args.cpp.o"
  "CMakeFiles/bro_util.dir/args.cpp.o.d"
  "CMakeFiles/bro_util.dir/env.cpp.o"
  "CMakeFiles/bro_util.dir/env.cpp.o.d"
  "CMakeFiles/bro_util.dir/rng.cpp.o"
  "CMakeFiles/bro_util.dir/rng.cpp.o.d"
  "CMakeFiles/bro_util.dir/table.cpp.o"
  "CMakeFiles/bro_util.dir/table.cpp.o.d"
  "libbro_util.a"
  "libbro_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
