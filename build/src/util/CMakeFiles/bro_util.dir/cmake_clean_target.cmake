file(REMOVE_RECURSE
  "libbro_util.a"
)
