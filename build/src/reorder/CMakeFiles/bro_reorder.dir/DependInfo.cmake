
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/amd.cpp" "src/reorder/CMakeFiles/bro_reorder.dir/amd.cpp.o" "gcc" "src/reorder/CMakeFiles/bro_reorder.dir/amd.cpp.o.d"
  "/root/repo/src/reorder/permutation.cpp" "src/reorder/CMakeFiles/bro_reorder.dir/permutation.cpp.o" "gcc" "src/reorder/CMakeFiles/bro_reorder.dir/permutation.cpp.o.d"
  "/root/repo/src/reorder/rcm.cpp" "src/reorder/CMakeFiles/bro_reorder.dir/rcm.cpp.o" "gcc" "src/reorder/CMakeFiles/bro_reorder.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/bro_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
