file(REMOVE_RECURSE
  "CMakeFiles/bro_reorder.dir/amd.cpp.o"
  "CMakeFiles/bro_reorder.dir/amd.cpp.o.d"
  "CMakeFiles/bro_reorder.dir/permutation.cpp.o"
  "CMakeFiles/bro_reorder.dir/permutation.cpp.o.d"
  "CMakeFiles/bro_reorder.dir/rcm.cpp.o"
  "CMakeFiles/bro_reorder.dir/rcm.cpp.o.d"
  "libbro_reorder.a"
  "libbro_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bro_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
