file(REMOVE_RECURSE
  "libbro_reorder.a"
)
