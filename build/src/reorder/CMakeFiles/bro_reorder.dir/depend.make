# Empty dependencies file for bro_reorder.
# This may be replaced when dependencies are built.
