file(REMOVE_RECURSE
  "CMakeFiles/test_suite_integration.dir/test_suite_integration.cpp.o"
  "CMakeFiles/test_suite_integration.dir/test_suite_integration.cpp.o.d"
  "test_suite_integration"
  "test_suite_integration.pdb"
  "test_suite_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
