# Empty dependencies file for test_suite_integration.
# This may be replaced when dependencies are built.
