file(REMOVE_RECURSE
  "CMakeFiles/test_bro_coo.dir/test_bro_coo.cpp.o"
  "CMakeFiles/test_bro_coo.dir/test_bro_coo.cpp.o.d"
  "test_bro_coo"
  "test_bro_coo.pdb"
  "test_bro_coo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bro_coo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
