# Empty dependencies file for test_bro_coo.
# This may be replaced when dependencies are built.
