# Empty compiler generated dependencies file for test_bro_hyb.
# This may be replaced when dependencies are built.
