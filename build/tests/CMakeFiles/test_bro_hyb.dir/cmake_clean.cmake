file(REMOVE_RECURSE
  "CMakeFiles/test_bro_hyb.dir/test_bro_hyb.cpp.o"
  "CMakeFiles/test_bro_hyb.dir/test_bro_hyb.cpp.o.d"
  "test_bro_hyb"
  "test_bro_hyb.pdb"
  "test_bro_hyb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bro_hyb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
