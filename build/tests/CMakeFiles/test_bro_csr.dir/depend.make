# Empty dependencies file for test_bro_csr.
# This may be replaced when dependencies are built.
