file(REMOVE_RECURSE
  "CMakeFiles/test_bro_csr.dir/test_bro_csr.cpp.o"
  "CMakeFiles/test_bro_csr.dir/test_bro_csr.cpp.o.d"
  "test_bro_csr"
  "test_bro_csr.pdb"
  "test_bro_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bro_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
