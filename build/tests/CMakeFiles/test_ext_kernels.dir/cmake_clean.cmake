file(REMOVE_RECURSE
  "CMakeFiles/test_ext_kernels.dir/test_ext_kernels.cpp.o"
  "CMakeFiles/test_ext_kernels.dir/test_ext_kernels.cpp.o.d"
  "test_ext_kernels"
  "test_ext_kernels.pdb"
  "test_ext_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ext_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
