# Empty dependencies file for test_ext_kernels.
# This may be replaced when dependencies are built.
