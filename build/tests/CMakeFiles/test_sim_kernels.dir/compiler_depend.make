# Empty compiler generated dependencies file for test_sim_kernels.
# This may be replaced when dependencies are built.
