file(REMOVE_RECURSE
  "CMakeFiles/test_cross_format.dir/test_cross_format.cpp.o"
  "CMakeFiles/test_cross_format.dir/test_cross_format.cpp.o.d"
  "test_cross_format"
  "test_cross_format.pdb"
  "test_cross_format[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
