# Empty compiler generated dependencies file for test_cross_format.
# This may be replaced when dependencies are built.
