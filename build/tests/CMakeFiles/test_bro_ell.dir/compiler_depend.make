# Empty compiler generated dependencies file for test_bro_ell.
# This may be replaced when dependencies are built.
