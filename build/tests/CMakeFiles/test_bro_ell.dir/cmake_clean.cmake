file(REMOVE_RECURSE
  "CMakeFiles/test_bro_ell.dir/test_bro_ell.cpp.o"
  "CMakeFiles/test_bro_ell.dir/test_bro_ell.cpp.o.d"
  "test_bro_ell"
  "test_bro_ell.pdb"
  "test_bro_ell[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bro_ell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
