# Empty compiler generated dependencies file for test_matrix_api.
# This may be replaced when dependencies are built.
