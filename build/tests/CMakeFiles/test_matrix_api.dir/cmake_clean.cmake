file(REMOVE_RECURSE
  "CMakeFiles/test_matrix_api.dir/test_matrix_api.cpp.o"
  "CMakeFiles/test_matrix_api.dir/test_matrix_api.cpp.o.d"
  "test_matrix_api"
  "test_matrix_api.pdb"
  "test_matrix_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
