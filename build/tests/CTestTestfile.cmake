# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bits[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_mmio[1]_include.cmake")
include("/root/repo/build/tests/test_matgen[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_bro_ell[1]_include.cmake")
include("/root/repo/build/tests/test_bro_coo[1]_include.cmake")
include("/root/repo/build/tests/test_bro_hyb[1]_include.cmake")
include("/root/repo/build/tests/test_bar[1]_include.cmake")
include("/root/repo/build/tests/test_matrix_api[1]_include.cmake")
include("/root/repo/build/tests/test_sim_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_native_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_ext_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_bro_csr[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_autotune[1]_include.cmake")
include("/root/repo/build/tests/test_args[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_cross_format[1]_include.cmake")
include("/root/repo/build/tests/test_suite_integration[1]_include.cmake")
