// Cross-format equivalence battery: every representation of the same matrix
// must agree exactly on structure and numerically on SpMV, across a
// randomized sweep of shapes and densities. The format sweep is driven by
// the engine registry, so a newly registered format is covered with no test
// edit — both through the facade's sequential apply and through a planned
// native execute.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "core/bro_csr.h"
#include "core/matrix.h"
#include "core/sliced_ell.h"
#include "core/savings.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "gpusim/device.h"
#include "sparse/convert.h"
#include "sparse/mmio.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace be = bro::engine;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr random_matrix(index_t rows, index_t cols, double mu, double local,
                      std::uint64_t seed) {
  bs::GenSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.mu = mu;
  spec.sigma = mu / 3.0;
  spec.local_prob = local;
  spec.seed = seed;
  return bs::generate(spec);
}

} // namespace

class CrossFormat
    : public ::testing::TestWithParam<std::tuple<int, int, double, double>> {};

TEST_P(CrossFormat, StructureAndSpmvAgree) {
  const auto [rows, cols, mu, local] = GetParam();
  const bs::Csr csr = random_matrix(rows, cols, mu, local,
                                    static_cast<std::uint64_t>(rows * 31 + cols));

  // Structure equivalence through every conversion cycle.
  EXPECT_EQ(bs::coo_to_csr(bs::csr_to_coo(csr)).col_idx, csr.col_idx);
  EXPECT_EQ(bs::ell_to_csr(bs::csr_to_ell(csr)).col_idx, csr.col_idx);
  EXPECT_EQ(bs::hyb_to_csr(bs::csr_to_hyb(csr)).col_idx, csr.col_idx);
  EXPECT_EQ(bc::BroEll::compress(bs::csr_to_ell(csr)).decompress().col_idx,
            bs::csr_to_ell(csr).col_idx);
  EXPECT_EQ(bc::BroCsr::compress(csr).decompress().col_idx, csr.col_idx);

  // Numerical equivalence across every public SpMV path.
  bro::Rng rng(99);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  const auto m = std::make_shared<bc::Matrix>(bc::Matrix::from_csr(csr));
  for (const auto& t : be::format_registry()) {
    // Facade path: the sequential reference apply.
    std::vector<value_t> y(y_ref.size(), -123.0);
    m->spmv(x, y, t.format);
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << t.name << " row " << r;

    // Planned path: the native (OpenMP) kernel with plan-owned workspaces.
    be::SpmvPlan plan(m, t.format);
    std::vector<value_t> y_plan(y_ref.size(), -321.0);
    plan.execute(x, y_plan);
    for (std::size_t r = 0; r < y_plan.size(); ++r)
      ASSERT_NEAR(y_plan[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << t.name << " (plan) row " << r;
  }

  // SlicedEll too (not in the facade's Format enum).
  {
    std::vector<value_t> y(y_ref.size());
    bc::SlicedEll::build(bs::csr_to_ell(csr)).spmv(x, y);
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrossFormat,
    ::testing::Values(std::tuple{257, 257, 6.0, 0.9},   // just over one slice
                      std::tuple{256, 256, 6.0, 0.9},   // exactly one slice
                      std::tuple{255, 511, 4.0, 0.2},   // rectangular, scattered
                      std::tuple{1030, 1030, 20.0, 0.95}, // several slices
                      std::tuple{64, 2048, 30.0, 0.5},  // wide
                      std::tuple{2048, 64, 9.0, 0.5})); // tall

// The adversarial battery (empty matrices, empty rows at slice boundaries,
// degenerate aspect ratios, maximum deltas, duplicate-heavy inputs) swept
// across every registered format: structural validation plus the facade,
// planned-native and simulator SpMV paths against the CSR reference.
TEST(CrossFormat, AdversarialSweepAcrossRegistry) {
  const auto dev = bro::sim::tesla_k20();
  for (const auto& c : bs::adversarial_suite(2013)) {
    SCOPED_TRACE(c.name);
    const auto m = std::make_shared<bc::Matrix>(bc::Matrix::from_csr(c.csr));
    const bs::Csr& csr = m->csr();

    bro::Rng rng(41);
    std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
    for (auto& v : x) v = rng.uniform() * 2 - 1;
    std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
    bs::spmv_csr_reference(csr, x, y_ref);

    for (const auto& t : be::format_registry()) {
      if (!t.applicable(csr, 3.0)) continue;
      SCOPED_TRACE(t.name);

      const auto issues = t.validate(*m);
      EXPECT_TRUE(issues.empty())
          << (issues.empty() ? std::string() : issues.front());

      std::vector<value_t> y(y_ref.size(), -5.0);
      t.apply(*m, x, y);
      for (std::size_t r = 0; r < y.size(); ++r)
        ASSERT_NEAR(y[r], y_ref[r], 1e-10 * (1.0 + std::abs(y_ref[r])));

      be::SpmvPlan plan(m, t.format);
      std::vector<value_t> y_plan(y_ref.size(), -6.0);
      plan.execute(x, y_plan);
      for (std::size_t r = 0; r < y_plan.size(); ++r)
        ASSERT_NEAR(y_plan[r], y_ref[r], 1e-10 * (1.0 + std::abs(y_ref[r])));

      if (t.sim_apply) {
        const auto y_sim = t.sim_apply(dev, *m, x);
        ASSERT_EQ(y_sim.size(), y_ref.size());
        for (std::size_t r = 0; r < y_sim.size(); ++r)
          ASSERT_NEAR(y_sim[r], y_ref[r], 1e-10 * (1.0 + std::abs(y_ref[r])));
      }
    }
  }
}

// Near-index_t-max dimensions: x/y vectors of size cols are unallocatable,
// so only the structural/lossless validators run.
TEST(CrossFormat, HugeDimensionCasesValidateStructurally) {
  for (const auto& c : bs::adversarial_huge_cases(2013)) {
    SCOPED_TRACE(c.name);
    const auto m = bc::Matrix::from_csr(c.csr);
    for (const auto& t : be::format_registry()) {
      if (!t.applicable(m.csr(), 3.0)) continue;
      SCOPED_TRACE(t.name);
      const auto issues = t.validate(m);
      EXPECT_TRUE(issues.empty())
          << (issues.empty() ? std::string() : issues.front());
    }
  }
}

TEST(CrossFormat, SavingsAccountingIsConsistent) {
  // eta and kappa must be mutually consistent and byte counts physical.
  const bs::Csr csr = random_matrix(900, 900, 12, 0.9, 3);
  const auto bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  const auto s = bc::make_savings(bro.original_index_bytes(),
                                  bro.compressed_index_bytes());
  EXPECT_NEAR(s.kappa(), 1.0 / (1.0 - s.eta()), 1e-9); // kappa = 1/(1-eta)
  // Physical recount of the stream bytes.
  std::size_t streams = 0;
  for (const auto& sl : bro.slices())
    streams += sl.stream.byte_size() + sl.bit_alloc.size() + sizeof(index_t);
  EXPECT_EQ(streams, bro.compressed_index_bytes());
}

TEST(CrossFormat, MatrixMarketRoundTripThroughBro) {
  // mtx -> Matrix -> BRO-HYB -> spmv == direct reference (end-to-end path).
  const bs::Csr csr = random_matrix(300, 280, 5, 0.4, 8);
  std::ostringstream buf;
  bs::write_matrix_market(buf, bs::csr_to_coo(csr));
  std::istringstream in(buf.str());
  const bs::Csr back = bs::coo_to_csr(bs::read_matrix_market(in));
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_EQ(back.vals, csr.vals);
}
