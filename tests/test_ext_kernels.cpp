// Simulator kernels for the extension formats must agree with the CSR
// reference and exhibit the expected performance relations.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/sim_spmv_ext.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bc = bro::core;
namespace bs = bro::sparse;
namespace gs = bro::sim;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 23) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_matches(const bs::Csr& csr, const std::vector<value_t>& y,
                    const std::vector<value_t>& x) {
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r]))) << r;
}

bs::Csr varied_matrix(std::uint64_t seed) {
  bs::GenSpec spec;
  spec.rows = 2200;
  spec.cols = 2200;
  spec.mu = 24;
  spec.sigma = 10;
  spec.run = 2;
  spec.len_corr = 128;
  spec.seed = seed;
  return bs::generate(spec);
}

} // namespace

TEST(ExtKernels, SlicedEllMatchesReference) {
  const bs::Csr csr = varied_matrix(1);
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_sliced_ell(
      gs::tesla_k20(), bc::SlicedEll::build(bs::csr_to_ell(csr)), x);
  expect_matches(csr, res.y, x);
}

TEST(ExtKernels, SlicedEllBetweenEllAndBroEll) {
  // The ablation ordering: ELLPACK <= Sliced-ELLPACK <= BRO-ELL in traffic.
  const bs::Csr csr = varied_matrix(2);
  const auto x = random_x(csr.cols);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const auto dev = gs::tesla_k20();
  const auto r_ell = bk::sim_spmv_ell(dev, ell, x);
  const auto r_sliced =
      bk::sim_spmv_sliced_ell(dev, bc::SlicedEll::build(ell), x);
  const auto r_bro = bk::sim_spmv_bro_ell(dev, bc::BroEll::compress(ell), x);
  EXPECT_LE(r_sliced.stats.dram_bytes(), r_ell.stats.dram_bytes());
  EXPECT_LE(r_bro.stats.dram_bytes(), r_sliced.stats.dram_bytes());
}

TEST(ExtKernels, BroEllVectorMatchesReference) {
  const bs::Csr csr = varied_matrix(3);
  const auto x = random_x(csr.cols);
  for (const int t : {1, 2, 4}) {
    const auto vec = bc::BroEllVector::compress(bs::csr_to_ell(csr), t);
    const auto res = bk::sim_spmv_bro_ell_vector(gs::tesla_c2070(), vec, x);
    expect_matches(csr, res.y, x);
  }
}

TEST(ExtKernels, BroEllVectorChargesReduction) {
  const bs::Csr csr = varied_matrix(4);
  const auto x = random_x(csr.cols);
  const auto dev = gs::tesla_k20();
  const auto r1 = bk::sim_spmv_bro_ell_vector(
      dev, bc::BroEllVector::compress(bs::csr_to_ell(csr), 1), x);
  const auto r4 = bk::sim_spmv_bro_ell_vector(
      dev, bc::BroEllVector::compress(bs::csr_to_ell(csr), 4), x);
  EXPECT_GT(r4.stats.shfl_ops, r1.stats.shfl_ops);
}

TEST(ExtKernels, BroEllValuesMatchesReference) {
  const bs::Csr csr = bs::generate_poisson2d(45, 41);
  const auto x = random_x(csr.cols);
  const auto vc = bc::BroEllValues::compress(bs::csr_to_ell(csr));
  const auto res = bk::sim_spmv_bro_ell_values(gs::tesla_k20(), vc, x);
  expect_matches(csr, res.y, x);
}

TEST(ExtKernels, ValueCompressionCutsTrafficOnStencil) {
  const bs::Csr csr = bs::generate_poisson2d(120, 120);
  const auto x = random_x(csr.cols);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const auto dev = gs::tesla_k20();
  const auto plain = bk::sim_spmv_bro_ell(dev, bc::BroEll::compress(ell), x);
  const auto vc =
      bk::sim_spmv_bro_ell_values(dev, bc::BroEllValues::compress(ell), x);
  EXPECT_LT(vc.stats.dram_bytes(), plain.stats.dram_bytes());
  EXPECT_GT(vc.time.gflops, plain.time.gflops);
}

TEST(ExtKernels, ValueCompressionRawFallbackCostsNothingExtra) {
  const bs::Csr csr = varied_matrix(5); // random values: raw fallback
  const auto x = random_x(csr.cols);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const auto dev = gs::tesla_k20();
  const auto plain = bk::sim_spmv_bro_ell(dev, bc::BroEll::compress(ell), x);
  bc::BroEllValuesOptions opts;
  opts.max_dict = 16;
  const auto vc = bk::sim_spmv_bro_ell_values(
      dev, bc::BroEllValues::compress(ell, opts), x);
  EXPECT_NEAR(static_cast<double>(vc.stats.dram_bytes()),
              static_cast<double>(plain.stats.dram_bytes()),
              0.02 * static_cast<double>(plain.stats.dram_bytes()));
}
