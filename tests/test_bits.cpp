// Unit and property tests for the bit-packing substrate.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "bits/bit_string.h"
#include "bits/bitwidth.h"
#include "bits/delta.h"
#include "bits/mux.h"
#include "util/rng.h"

namespace bb = bro::bits;

TEST(BitWidth, MatchesDefinition) {
  EXPECT_EQ(bb::bit_width_of(0), 0);
  EXPECT_EQ(bb::bit_width_of(1), 1);
  EXPECT_EQ(bb::bit_width_of(2), 2);
  EXPECT_EQ(bb::bit_width_of(3), 2);
  EXPECT_EQ(bb::bit_width_of(4), 3);
  EXPECT_EQ(bb::bit_width_of(255), 8);
  EXPECT_EQ(bb::bit_width_of(256), 9);
  EXPECT_EQ(bb::bit_width_of(~0ull), 64);
}

TEST(BitWidth, MaxValueForBits) {
  EXPECT_EQ(bb::max_value_for_bits(0), 0u);
  EXPECT_EQ(bb::max_value_for_bits(1), 1u);
  EXPECT_EQ(bb::max_value_for_bits(8), 255u);
  EXPECT_EQ(bb::max_value_for_bits(64), ~0ull);
}

TEST(BitWidth, ZigzagRoundTrip) {
  for (std::int64_t v : {0ll, 1ll, -1ll, 2ll, -2ll, 123456789ll, -987654321ll})
    EXPECT_EQ(bb::zigzag_decode(bb::zigzag_encode(v)), v);
}

TEST(BitString, AppendPeekSimple) {
  bb::BitString s;
  s.append(0b101, 3);
  s.append(0b01, 2);
  EXPECT_EQ(s.size_bits(), 5u);
  EXPECT_EQ(s.peek(0, 3), 0b101u);
  EXPECT_EQ(s.peek(3, 2), 0b01u);
  EXPECT_EQ(s.peek(0, 5), 0b10101u);
}

TEST(BitString, SymbolExtractionMsbFirst) {
  bb::BitString s;
  // 8 bits: 1101 0011 -> two 4-bit symbols 1101 and 0011.
  s.append(0b11010011, 8);
  EXPECT_EQ(s.symbol(0, 4), 0b1101u);
  EXPECT_EQ(s.symbol(1, 4), 0b0011u);
}

TEST(BitString, CrossesWordBoundary) {
  bb::BitString s;
  s.append(~0ull >> 4, 60); // 60 ones
  s.append(0b1011, 4);
  s.append(0x123456789abcdefull, 60);
  EXPECT_EQ(s.peek(60, 4), 0b1011u);
  EXPECT_EQ(s.peek(64, 60), 0x123456789abcdefull);
}

TEST(BitString, PadToMultiple) {
  bb::BitString s;
  s.append(0b111, 3);
  const int pad = s.pad_to_multiple(32);
  EXPECT_EQ(pad, 29);
  EXPECT_EQ(s.size_bits(), 32u);
  EXPECT_EQ(s.symbol(0, 32), 0b111u << 29);
  EXPECT_EQ(s.pad_to_multiple(32), 0); // already aligned
}

TEST(BitString, PeekBeyondEndReadsZero) {
  bb::BitString s;
  s.append(0b1, 1);
  EXPECT_EQ(s.peek(0, 8), 0b10000000u);
  EXPECT_EQ(s.peek(100, 32), 0u);
}

TEST(BitString, AppendRejectsOverwideValue) {
  bb::BitString s;
  EXPECT_THROW(s.append(4, 2), std::runtime_error);
  EXPECT_THROW(s.append(0, 65), std::runtime_error);
  EXPECT_THROW(s.append(0, -1), std::runtime_error);
}

TEST(BitStringReader, SequentialReads) {
  bb::BitString s;
  s.append(5, 3);
  s.append(0, 2);
  s.append(1023, 10);
  bb::BitStringReader r(s);
  EXPECT_EQ(r.read(3), 5u);
  EXPECT_EQ(r.read(2), 0u);
  EXPECT_EQ(r.read(10), 1023u);
  EXPECT_TRUE(r.exhausted());
}

// Property: random append sequences read back exactly.
class BitStringRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitStringRoundTrip, RandomSequences) {
  bro::Rng rng(GetParam());
  bb::BitString s;
  std::vector<std::pair<std::uint64_t, int>> appended;
  for (int i = 0; i < 500; ++i) {
    const int nbits = static_cast<int>(rng.below(64)) + 1;
    const std::uint64_t v = rng.next() & bb::max_value_for_bits(nbits);
    s.append(v, nbits);
    appended.emplace_back(v, nbits);
  }
  bb::BitStringReader r(s);
  for (const auto& [v, nbits] : appended) EXPECT_EQ(r.read(nbits), v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStringRoundTrip,
                         ::testing::Values(1, 2, 3, 42, 1234567));

TEST(Delta, RowEncodeDecode) {
  const std::vector<bro::index_t> idx = {0, 1, 5, 100};
  const auto deltas = bb::delta_encode_row(idx);
  EXPECT_EQ(deltas, (std::vector<std::uint32_t>{1, 1, 4, 95}));
  EXPECT_EQ(bb::delta_decode_row(deltas), idx);
}

TEST(Delta, FirstColumnZeroIsValid) {
  // A 0-based first column of 0 must encode to a non-zero delta (0 is the
  // padding sentinel).
  const std::vector<bro::index_t> idx = {0};
  const auto deltas = bb::delta_encode_row(idx);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_NE(deltas[0], bb::kInvalidDelta);
}

TEST(Delta, RejectsNonIncreasing) {
  const std::vector<bro::index_t> idx = {3, 3};
  EXPECT_THROW(bb::delta_encode_row(idx), std::runtime_error);
}

TEST(Delta, DecodeSkipsPadding) {
  const std::vector<std::uint32_t> deltas = {1, 2, 0, 0};
  EXPECT_EQ(bb::delta_decode_row(deltas), (std::vector<bro::index_t>{0, 2}));
}

TEST(Delta, MonotonicAllowsRepeats) {
  const std::vector<bro::index_t> rows = {2, 2, 2, 5, 5, 9};
  const auto deltas = bb::delta_encode_monotonic(rows, 2);
  EXPECT_EQ(deltas, (std::vector<std::uint32_t>{0, 0, 0, 3, 0, 4}));
  EXPECT_EQ(bb::delta_decode_monotonic(deltas, 2), rows);
}

TEST(Mux, RejectsNonHardwareSymbolLength) {
  // The paper's Fig. 1 example uses sym_len = 4 for illustration only; the
  // implementation accepts the hardware access widths 32 and 64.
  bb::BitString r0;
  r0.append(0xA, 4);
  const std::vector<bb::BitString> rows{std::move(r0)};
  EXPECT_THROW(bb::MuxedStream::interleave(rows, 4), std::runtime_error);
}

TEST(Mux, Interleave32) {
  bb::BitString r0, r1;
  r0.append(0x11111111u, 32);
  r0.append(0x22222222u, 32);
  r1.append(0x33333333u, 32);
  r1.append(0x44444444u, 32);
  std::vector<bb::BitString> rows;
  rows.push_back(std::move(r0));
  rows.push_back(std::move(r1));
  const auto mux = bb::MuxedStream::interleave(rows, 32);
  EXPECT_EQ(mux.height(), 2u);
  EXPECT_EQ(mux.symbols_per_row(), 2u);
  // comp_str[c*h + t]
  EXPECT_EQ(mux[0], 0x11111111u); // c=0 t=0
  EXPECT_EQ(mux[1], 0x33333333u); // c=0 t=1
  EXPECT_EQ(mux[2], 0x22222222u); // c=1 t=0
  EXPECT_EQ(mux[3], 0x44444444u); // c=1 t=1
  EXPECT_EQ(mux.at(1, 0), 0x22222222u);
  EXPECT_EQ(mux.byte_size(), 16u);
}

TEST(Mux, PackedStorageIsHalfSizeForSym32) {
  // sym_len=32 streams live in uint32 slots: resident bytes must match the
  // logical byte_size, i.e. half of what one-uint64-per-symbol storage cost.
  bb::BitString r0, r1;
  for (int i = 0; i < 8; ++i) {
    r0.append(static_cast<std::uint64_t>(i), 32);
    r1.append(static_cast<std::uint64_t>(i) << 16, 32);
  }
  std::vector<bb::BitString> rows;
  rows.push_back(std::move(r0));
  rows.push_back(std::move(r1));
  const auto mux = bb::MuxedStream::interleave(rows, 32);
  EXPECT_EQ(mux.total_symbols(), 16u);
  EXPECT_EQ(mux.byte_size(), 16u * 4u);
  EXPECT_EQ(mux.resident_bytes(), mux.byte_size());
  // The typed view is the same memory the decoders walk.
  const std::uint32_t* slots = mux.data<std::uint32_t>();
  for (std::size_t i = 0; i < mux.total_symbols(); ++i)
    EXPECT_EQ(slots[i], mux[i]) << "slot " << i;
}

TEST(Mux, ResidentBytesSym64) {
  bb::BitString r0;
  for (int i = 0; i < 4; ++i) r0.append(~0ull >> i, 64);
  std::vector<bb::BitString> rows;
  rows.push_back(std::move(r0));
  const auto mux = bb::MuxedStream::interleave(rows, 64);
  EXPECT_EQ(mux.byte_size(), 4u * 8u);
  EXPECT_EQ(mux.resident_bytes(), mux.byte_size());
  const std::uint64_t* slots = mux.data<std::uint64_t>();
  for (std::size_t i = 0; i < mux.total_symbols(); ++i)
    EXPECT_EQ(slots[i], mux[i]) << "slot " << i;
}

TEST(Mux, SetSlotRoundTripAndRangeCheck) {
  bb::BitString r0;
  r0.append(0, 32);
  r0.append(0, 32);
  std::vector<bb::BitString> rows;
  rows.push_back(std::move(r0));
  auto mux = bb::MuxedStream::interleave(rows, 32);
  mux.set_slot(1, 0xDEADBEEFu);
  EXPECT_EQ(mux[1], 0xDEADBEEFu);
  // A value wider than the 32-bit slot must be rejected.
  EXPECT_THROW(mux.set_slot(0, 0x1'0000'0000ull), std::runtime_error);
}

TEST(Mux, RejectsUnequalSymbolCounts) {
  bb::BitString r0, r1;
  r0.append(1, 32);
  r1.append(1, 32);
  r1.append(1, 32);
  std::vector<bb::BitString> rows;
  rows.push_back(std::move(r0));
  rows.push_back(std::move(r1));
  EXPECT_THROW(bb::MuxedStream::interleave(rows, 32), std::runtime_error);
}
