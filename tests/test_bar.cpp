// BAR reordering tests: permutation validity, objective improvement, and the
// interaction with BRO-ELL compression (reordering must not change results).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/bar.h"
#include "core/bro_ell.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr mixed_width_matrix(std::uint64_t seed) {
  // Rows alternate between narrow-banded and scattered so reordering has
  // something to gain by grouping similar rows.
  bs::Coo coo;
  coo.rows = 2048;
  coo.cols = 2048;
  bro::Rng rng(seed);
  for (index_t r = 0; r < coo.rows; ++r) {
    const bool scattered = (r % 3 == 0);
    const int len = 8;
    index_t c = scattered ? static_cast<index_t>(rng.below(1024))
                          : std::max<index_t>(0, r - 4);
    for (int j = 0; j < len; ++j) {
      const index_t step =
          scattered ? static_cast<index_t>(1 + rng.below(120)) : 1;
      c = std::min<index_t>(coo.cols - 1, c + step);
      coo.push(r, c, rng.uniform());
    }
  }
  coo.canonicalize();
  return bs::coo_to_csr(coo);
}

bs::Csr apply_row_perm(const bs::Csr& csr, std::span<const index_t> perm) {
  bs::Coo coo;
  coo.rows = csr.rows;
  coo.cols = csr.cols;
  for (index_t nr = 0; nr < csr.rows; ++nr) {
    const index_t r = perm[static_cast<std::size_t>(nr)];
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      coo.push(nr, csr.col_idx[p], csr.vals[p]);
  }
  return bs::coo_to_csr(coo);
}

} // namespace

TEST(Bar, ProducesValidPermutation) {
  const bs::Csr csr = mixed_width_matrix(1);
  bc::BarOptions opts;
  opts.slice_height = 64;
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  ASSERT_EQ(res.permutation.size(), static_cast<std::size_t>(csr.rows));
  std::vector<index_t> sorted = res.permutation;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < csr.rows; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Bar, ObjectiveNotWorseThanIdentity) {
  const bs::Csr csr = mixed_width_matrix(2);
  bc::BarOptions opts;
  opts.slice_height = 64;
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  // The greedy heuristic targets exactly this objective; it should beat the
  // natural order on a mixed-structure matrix.
  EXPECT_LT(res.objective, res.identity_objective);
}

TEST(Bar, ImprovesBroEllCompression) {
  const bs::Csr csr = mixed_width_matrix(3);
  bc::BarOptions opts;
  opts.slice_height = 64;
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  const bs::Csr reordered = apply_row_perm(csr, res.permutation);

  bc::BroEllOptions eopts;
  eopts.slice_height = 64;
  const auto before = bc::BroEll::compress(bs::csr_to_ell(csr), eopts);
  const auto after = bc::BroEll::compress(bs::csr_to_ell(reordered), eopts);
  EXPECT_LT(after.compressed_index_bytes(), before.compressed_index_bytes());
}

TEST(Bar, ReorderedSpmvIsPermutedProduct) {
  const bs::Csr csr = mixed_width_matrix(4);
  bc::BarOptions opts;
  opts.slice_height = 64;
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  const bs::Csr reordered = apply_row_perm(csr, res.permutation);

  bro::Rng rng(9);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
  for (auto& v : x) v = rng.uniform();
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> yp(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y);
  bs::spmv_csr_reference(reordered, x, yp);
  // y' = P*y: row nr of the reordered product equals row perm[nr] of y.
  for (index_t nr = 0; nr < csr.rows; ++nr)
    EXPECT_DOUBLE_EQ(yp[static_cast<std::size_t>(nr)],
                     y[static_cast<std::size_t>(res.permutation[static_cast<std::size_t>(nr)])]);
}

TEST(Bar, EquiPartitionConstraintHolds) {
  const bs::Csr csr = mixed_width_matrix(5);
  bc::BarOptions opts;
  opts.slice_height = 100; // does not divide 2048: last cluster is ragged
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  EXPECT_EQ(res.permutation.size(), 2048u);
  // No cluster can exceed h rows; implied by the permutation being complete
  // and clusters being emitted in order. Validated via the objective
  // evaluator accepting the permutation.
  const double obj = bc::bar_objective(csr, res.permutation, opts);
  EXPECT_NEAR(obj, res.objective, 1e-9);
}

TEST(Bar, CandidatePruningStillValid) {
  const bs::Csr csr = mixed_width_matrix(6);
  bc::BarOptions opts;
  opts.slice_height = 32;
  opts.max_candidates = 4;
  const bc::BarResult res = bc::bar_reorder(csr, opts);
  std::vector<index_t> sorted = res.permutation;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < csr.rows; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Bar, TinyAndEmptyMatrices) {
  bs::Csr empty;
  empty.rows = 0;
  empty.cols = 0;
  empty.row_ptr = {0};
  const bc::BarResult r0 = bc::bar_reorder(empty);
  EXPECT_TRUE(r0.permutation.empty());

  const bs::Csr one = bs::generate_poisson2d(1, 3);
  const bc::BarResult r1 = bc::bar_reorder(one);
  EXPECT_EQ(r1.permutation.size(), 3u);
}
