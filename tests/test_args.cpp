// Tests for the CLI argument parser.
#include <gtest/gtest.h>

#include "util/args.h"

using bro::Args;

namespace {

Args parse(std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Args, PositionalOnly) {
  const auto a = parse({"tune", "cant"});
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"tune", "cant"}));
  EXPECT_FALSE(a.has("anything"));
}

TEST(Args, EqualsSyntax) {
  const auto a = parse({"--scale=0.5", "--device=k20"});
  EXPECT_DOUBLE_EQ(a.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(a.get("device", "x"), "k20");
}

TEST(Args, SpaceSyntax) {
  const auto a = parse({"spmv", "--format", "BRO-ELL", "m.mtx"});
  EXPECT_EQ(a.get("format", ""), "BRO-ELL");
  EXPECT_EQ(a.positional(), (std::vector<std::string>{"spmv", "m.mtx"}));
}

TEST(Args, BareFlag) {
  const auto a = parse({"--verbose", "--level", "3"});
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.get("verbose", "default"), "");
  EXPECT_EQ(a.get_long("level", 0), 3);
}

TEST(Args, FlagFollowedByOptionIsBare) {
  const auto a = parse({"--flag", "--scale=2"});
  EXPECT_TRUE(a.has("flag"));
  EXPECT_EQ(a.get("flag", "x"), "");
  EXPECT_DOUBLE_EQ(a.get_double("scale", 0), 2.0);
}

TEST(Args, NumericParseErrors) {
  const auto a = parse({"--scale", "abc"});
  EXPECT_THROW(a.get_double("scale", 0), std::runtime_error);
  EXPECT_THROW(a.get_long("scale", 0), std::runtime_error);
}

TEST(Args, RejectsTrailingGarbage) {
  // strtol/strtod stop at the first bad character; the parser must treat a
  // partially consumed token ("12abc" -> 12) as an error, not a value.
  const auto a = parse({"--rounds", "12abc", "--eps", "1.5x", "--n", "7 "});
  EXPECT_THROW(a.get_long("rounds", 0), std::runtime_error);
  EXPECT_THROW(a.get_double("rounds", 0), std::runtime_error);
  EXPECT_THROW(a.get_double("eps", 0), std::runtime_error);
  EXPECT_THROW(a.get_long("n", 0), std::runtime_error);
}

TEST(Args, AcceptsFullyConsumedNumbers) {
  const auto a = parse({"--rounds", "12", "--eps", "1.5e-3", "--neg", "-4"});
  EXPECT_EQ(a.get_long("rounds", 0), 12);
  EXPECT_DOUBLE_EQ(a.get_double("eps", 0), 1.5e-3);
  EXPECT_EQ(a.get_long("neg", 0), -4);
  EXPECT_DOUBLE_EQ(a.get_double("rounds", 0), 12.0);
}

TEST(Args, AllowOnlyValidation) {
  const auto a = parse({"--scale=1", "--oops=2"});
  EXPECT_THROW(a.allow_only({"scale"}), std::runtime_error);
  EXPECT_NO_THROW(a.allow_only({"scale", "oops"}));
}

TEST(Args, FallbacksWhenMissing) {
  const auto a = parse({});
  EXPECT_EQ(a.get("k", "fb"), "fb");
  EXPECT_DOUBLE_EQ(a.get_double("k", 1.5), 1.5);
  EXPECT_EQ(a.get_long("k", 9), 9);
}
