// Serving-layer tests: PlanCache hit/miss/eviction accounting (including
// the N-threads-by-M-matrices contention case), SpmvServer correctness,
// deterministic batching through the synchronous poll_once path,
// backpressure, and the SpmvPlan single-executor guard.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/plan.h"
#include "serve/plan_cache.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bs = bro::sparse;
namespace bc = bro::core;
namespace be = bro::engine;
namespace bv = bro::serve;
using bro::index_t;
using bro::value_t;

namespace {

std::shared_ptr<bc::Matrix> make_matrix(index_t rows, index_t cols,
                                        std::uint64_t seed) {
  bs::GenSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.mu = 7;
  spec.sigma = 3;
  spec.seed = seed;
  return std::make_shared<bc::Matrix>(bc::Matrix::from_csr(bs::generate(spec)));
}

std::vector<value_t> random_x(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

std::vector<value_t> reference(const bc::Matrix& m,
                               const std::vector<value_t>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(m.rows()));
  bs::spmv_csr_reference(m.csr(), x, y);
  return y;
}

void expect_near_ref(const std::vector<value_t>& y,
                     const std::vector<value_t>& ref) {
  ASSERT_EQ(y.size(), ref.size());
  for (std::size_t r = 0; r < ref.size(); ++r)
    ASSERT_NEAR(y[r], ref[r], 1e-10 * (1.0 + std::abs(ref[r]))) << "row " << r;
}

} // namespace

TEST(PlanCache, HitsMissesAndSharing) {
  bv::PlanCache cache(std::size_t{64} << 20);
  auto m = make_matrix(120, 110, 1);

  auto p1 = cache.get_or_build("a", m, bc::Format::kCsr);
  auto p2 = cache.get_or_build("a", m, bc::Format::kCsr);
  EXPECT_EQ(p1.get(), p2.get()); // same cached plan, not a rebuild
  auto p3 = cache.get_or_build("a", m, bc::Format::kBroEll);
  EXPECT_NE(p1.get(), p3.get()); // format is part of the key

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_GT(s.resident_bytes, 0u);
  EXPECT_EQ(s.resident_bytes, p1->resident_bytes() + p3->resident_bytes());
}

TEST(PlanCache, LruEvictionKeepsMostRecent) {
  // A 1-byte budget admits exactly one (MRU) entry at a time.
  bv::PlanCache cache(1);
  auto ma = make_matrix(100, 100, 2);
  auto mb = make_matrix(100, 100, 3);

  auto pa = cache.get_or_build("a", ma, bc::Format::kCsr);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.get_or_build("b", mb, bc::Format::kCsr); // evicts "a"
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // "a" was evicted, so this is a miss; our shared_ptr kept pa alive.
  auto pa2 = cache.get_or_build("a", ma, bc::Format::kCsr);
  EXPECT_NE(pa.get(), pa2.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 2u);

  // The evicted plan is still usable through the caller's reference.
  const auto x = random_x(ma->cols(), 7);
  std::vector<value_t> y(static_cast<std::size_t>(ma->rows()));
  pa->execute(x, y);
  expect_near_ref(y, reference(*ma, x));
}

TEST(PlanCache, ClearDropsEntries) {
  bv::PlanCache cache(std::size_t{64} << 20);
  auto m = make_matrix(60, 60, 4);
  cache.get_or_build("a", m);
  cache.get_or_build("b", m);
  cache.clear();
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.resident_bytes, 0u);
}

// The contention satellite: N threads hammer M matrices through one cache
// whose budget forces continual eviction. Counters must reconcile exactly
// and every result must match the sequential CSR reference.
TEST(PlanCache, ContendedCountersReconcileAndResultsMatch) {
  constexpr int kThreads = 4;
  constexpr int kMatrices = 3;
  constexpr int kIters = 25;

  std::vector<std::shared_ptr<bc::Matrix>> matrices;
  std::vector<std::vector<value_t>> xs, refs;
  for (int i = 0; i < kMatrices; ++i) {
    matrices.push_back(make_matrix(150 + 10 * i, 140 + 10 * i,
                                   static_cast<std::uint64_t>(100 + i)));
    xs.push_back(random_x(matrices.back()->cols(),
                          static_cast<std::uint64_t>(200 + i)));
    refs.push_back(reference(*matrices.back(), xs.back()));
  }

  // Budget of one plan: threads constantly evict each other's entries.
  bv::PlanCache cache(be::SpmvPlan(matrices[0], bc::Format::kCsr)
                          .resident_bytes());
  // Returned plans are single-executor objects shared between threads that
  // hit the same cache entry; executes serialize per matrix id, exactly as
  // SpmvServer does.
  std::mutex exec_mu[kMatrices];

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string ids[] = {"m0", "m1", "m2"};
      for (int it = 0; it < kIters; ++it) {
        const int i = (t + it) % kMatrices;
        auto plan = cache.get_or_build(
            ids[i], matrices[static_cast<std::size_t>(i)], bc::Format::kCsr);
        std::vector<value_t> y(refs[static_cast<std::size_t>(i)].size());
        {
          std::lock_guard<std::mutex> lock(exec_mu[i]);
          plan->execute(xs[static_cast<std::size_t>(i)], y);
        }
        const auto& ref = refs[static_cast<std::size_t>(i)];
        for (std::size_t r = 0; r < ref.size(); ++r)
          if (std::abs(y[r] - ref[r]) > 1e-10 * (1.0 + std::abs(ref[r]))) {
            ++failures;
            break;
          }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, std::uint64_t{kThreads} * kIters);
  EXPECT_EQ(s.build_failures, 0u);
  EXPECT_GT(s.evictions, 0u); // the tiny budget must have evicted
  EXPECT_EQ(s.entries, s.misses - s.evictions - s.build_failures);
  EXPECT_LE(s.resident_bytes, 2 * cache.max_resident_bytes());
}

TEST(SpmvPlan, ConcurrentExecuteThrowsInsteadOfRacing) {
  auto m = make_matrix(80, 80, 5);
  be::SpmvPlan plan(m, bc::Format::kCsr);
  const auto x = random_x(m->cols(), 9);
  std::vector<value_t> y(static_cast<std::size_t>(m->rows()));

  plan.debug_acquire(); // simulate another thread mid-execute
  EXPECT_THROW(plan.execute(x, y), std::runtime_error);
  EXPECT_THROW(plan.execute_multi(x, y, 1), std::runtime_error);
  plan.debug_release();
  plan.execute(x, y); // usable again after the guard is released
  expect_near_ref(y, reference(*m, x));
}

TEST(SpmvServer, ServesCorrectResults) {
  bv::ServerOptions opts;
  opts.threads = 2;
  bv::SpmvServer server(opts);
  auto ma = make_matrix(130, 120, 6);
  auto mb = make_matrix(90, 95, 7);
  server.add_matrix("a", ma);
  server.add_matrix("b", mb);

  std::vector<std::future<std::vector<value_t>>> futures;
  std::vector<std::vector<value_t>> expected;
  for (int i = 0; i < 20; ++i) {
    const bool use_a = i % 2 == 0;
    const auto& m = use_a ? ma : mb;
    const auto x = random_x(m->cols(), static_cast<std::uint64_t>(400 + i));
    expected.push_back(reference(*m, x));
    futures.push_back(server.submit(use_a ? "a" : "b", x));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE(i);
    expect_near_ref(futures[i].get(), expected[i]);
  }

  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.submitted, 20u);
  EXPECT_EQ(metrics.served, 20u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GE(metrics.cache.misses, 1u);
  EXPECT_FALSE(metrics.latency_by_format.empty());
}

TEST(SpmvServer, SynchronousModeCoalescesBatches) {
  bv::ServerOptions opts;
  opts.threads = 0; // caller drives with poll_once: fully deterministic
  opts.max_batch = 4;
  opts.format = bc::Format::kBroEll;
  bv::SpmvServer server(opts);
  auto m = make_matrix(100, 100, 8);
  server.add_matrix("a", m);

  std::vector<std::future<std::vector<value_t>>> futures;
  std::vector<std::vector<value_t>> expected;
  for (int i = 0; i < 8; ++i) {
    const auto x = random_x(m->cols(), static_cast<std::uint64_t>(500 + i));
    expected.push_back(reference(*m, x));
    futures.push_back(server.submit("a", x));
  }

  EXPECT_TRUE(server.poll_once());  // serves requests 0..3 as one batch
  EXPECT_TRUE(server.poll_once());  // serves requests 4..7
  EXPECT_FALSE(server.poll_once()); // queue is empty

  for (std::size_t i = 0; i < futures.size(); ++i) {
    SCOPED_TRACE(i);
    expect_near_ref(futures[i].get(), expected[i]);
  }

  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.batches, 2u);
  EXPECT_EQ(metrics.served, 8u);
  EXPECT_DOUBLE_EQ(metrics.batch_sizes.mean(), 4.0);
  EXPECT_DOUBLE_EQ(metrics.batch_sizes.max(), 4.0);
  ASSERT_EQ(metrics.latency_by_format.count("BRO-ELL"), 1u);
  EXPECT_EQ(metrics.latency_by_format.at("BRO-ELL").count(), 2u);
}

TEST(SpmvServer, BackpressureRejectsWhenQueueFull) {
  bv::ServerOptions opts;
  opts.threads = 0;
  opts.max_queue = 2;
  bv::SpmvServer server(opts);
  auto m = make_matrix(50, 50, 9);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 10);

  auto f1 = server.submit("a", x);
  auto f2 = server.submit("a", x);
  EXPECT_THROW(server.submit("a", x), bv::RejectedError);
  EXPECT_EQ(server.metrics().rejected, 1u);

  server.drain(); // synchronous drain serves the two queued requests
  expect_near_ref(f1.get(), reference(*m, x));
  expect_near_ref(f2.get(), reference(*m, x));
  // With room again, the same submit is accepted.
  auto f3 = server.submit("a", x);
  server.drain();
  expect_near_ref(f3.get(), reference(*m, x));
}

TEST(SpmvServer, RejectsBadRequestsEagerly) {
  bv::SpmvServer server({.threads = 0});
  auto m = make_matrix(40, 40, 11);
  server.add_matrix("a", m);

  std::vector<value_t> wrong(static_cast<std::size_t>(m->cols()) + 1, 1.0);
  EXPECT_THROW(server.submit("a", wrong), std::runtime_error);
  EXPECT_THROW(server.submit("nope", random_x(40, 12)), std::runtime_error);
  EXPECT_EQ(server.metrics().submitted, 0u);
  EXPECT_EQ(server.matrix("a").get(), m.get());
  EXPECT_EQ(server.matrix("nope"), nullptr);
}

TEST(SpmvServer, DestructorDrainsPendingRequests) {
  auto m = make_matrix(60, 60, 13);
  const auto x = random_x(m->cols(), 14);
  std::future<std::vector<value_t>> f;
  {
    bv::SpmvServer server({.threads = 0});
    server.add_matrix("a", m);
    f = server.submit("a", x);
  } // destructor must serve the queued request, not abandon the promise
  expect_near_ref(f.get(), reference(*m, x));
}

TEST(ServerOptions, ValidatedAtConstruction) {
  EXPECT_THROW(bv::SpmvServer({.threads = -1}), std::runtime_error);
  EXPECT_THROW(bv::SpmvServer({.max_queue = 0}), std::runtime_error);
  EXPECT_THROW(bv::SpmvServer({.max_batch = 0}), std::runtime_error);
  EXPECT_THROW(bv::SpmvServer({.max_batch = -7}), std::runtime_error);
  bv::ServerOptions bad_pools;
  bad_pools.pools = -1;
  EXPECT_THROW(bv::SpmvServer{bad_pools}, std::runtime_error);
  bv::ServerOptions bad_shards;
  bad_shards.shards = -2;
  EXPECT_THROW(bv::SpmvServer{bad_shards}, std::runtime_error);
}

TEST(SpmvServer, RejectedErrorCarriesQueueDepth) {
  bv::ServerOptions opts;
  opts.threads = 0;
  opts.max_queue = 3;
  bv::SpmvServer server(opts);
  auto m = make_matrix(40, 40, 15);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 16);

  for (int i = 0; i < 3; ++i) server.submit("a", x);
  try {
    server.submit("a", x);
    FAIL() << "expected RejectedError";
  } catch (const bv::RejectedError& e) {
    EXPECT_EQ(e.queue_depth(), 3u); // the depth the submit observed
  }
  server.drain();
}

TEST(SpmvServer, RemoveMatrixDropsRegistrationAndCachedPlans) {
  bv::ServerOptions opts;
  opts.threads = 0;
  bv::SpmvServer server(opts);
  auto m = make_matrix(70, 70, 17);
  server.add_matrix("a", m);
  server.add_matrix("b", make_matrix(50, 50, 18));

  // Build plans for both, then drop "a": its cache entries must go too.
  auto fa = server.submit("a", random_x(m->cols(), 19));
  auto fb = server.submit("b", random_x(50, 20));
  server.drain();
  fa.get();
  fb.get();
  const auto before = server.metrics().cache;
  EXPECT_EQ(before.entries, 2u);

  EXPECT_TRUE(server.remove_matrix("a"));
  EXPECT_EQ(server.matrix("a"), nullptr);
  const auto after = server.metrics().cache;
  EXPECT_EQ(after.entries, 1u);
  EXPECT_LT(after.resident_bytes, before.resident_bytes);

  // Gone for new submits; removing again reports false.
  EXPECT_THROW(server.submit("a", random_x(m->cols(), 21)),
               std::runtime_error);
  EXPECT_FALSE(server.remove_matrix("a"));
  // "b" is untouched.
  auto fb2 = server.submit("b", random_x(50, 22));
  server.drain();
  fb2.get();
}

TEST(SpmvServer, RemoveMatrixFailsQueuedRequestsLoudly) {
  bv::ServerOptions opts;
  opts.threads = 0;
  bv::SpmvServer server(opts);
  auto m = make_matrix(30, 30, 23);
  server.add_matrix("a", m);
  auto f = server.submit("a", random_x(m->cols(), 24));
  server.remove_matrix("a"); // request still queued
  server.drain();
  EXPECT_THROW(f.get(), std::runtime_error);
  EXPECT_EQ(server.metrics().failed, 1u);
}

TEST(PlanCache, EraseMatrixDropsAllFormatsForThatId) {
  bv::PlanCache cache(std::size_t{64} << 20);
  auto m = make_matrix(80, 80, 25);
  cache.get_or_build("a", m, bc::Format::kCsr);
  cache.get_or_build("a", m, bc::Format::kBroEll);
  cache.get_or_build("b", m, bc::Format::kCsr);
  ASSERT_EQ(cache.stats().entries, 3u);

  EXPECT_EQ(cache.erase_matrix("a"), 2u);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(cache.erase_matrix("a"), 0u);
  EXPECT_EQ(cache.erase_matrix("missing"), 0u);
}

TEST(AdmissionController, TokenBucketThrottlesPerClient) {
  // Deterministic: the test owns the clock.
  double now = 0;
  bv::AdmissionOptions opts;
  opts.rate = 2;  // 2 tokens/s
  opts.burst = 3; // bucket capacity
  bv::AdmissionController adm(opts, [&] { return now; });

  // A fresh client starts with a full burst, then runs dry.
  adm.admit("alice", 0);
  adm.admit("alice", 0);
  adm.admit("alice", 0);
  EXPECT_THROW(adm.admit("alice", 5), bv::RejectedError);
  // Other clients have their own bucket.
  adm.admit("bob", 0);

  // Half a second refills one token (rate 2/s)...
  now = 0.5;
  adm.admit("alice", 0);
  EXPECT_THROW(adm.admit("alice", 0), bv::RejectedError);
  // ...and a long idle period caps at burst, not unbounded credit.
  now = 100.0;
  adm.admit("alice", 0);
  adm.admit("alice", 0);
  adm.admit("alice", 0);
  EXPECT_THROW(adm.admit("alice", 0), bv::RejectedError);

  const auto s = adm.stats();
  EXPECT_EQ(s.admitted, 8u);
  EXPECT_EQ(s.throttled, 3u);
  EXPECT_EQ(s.shed, 0u);
}

TEST(AdmissionController, ShedsAtDepthBeforeTouchingBuckets) {
  bv::AdmissionOptions opts;
  opts.rate = 1;
  opts.burst = 1;
  opts.shed_depth = 4;
  double now = 0;
  bv::AdmissionController adm(opts, [&] { return now; });

  try {
    adm.admit("carol", 4); // at the shed depth
    FAIL() << "expected RejectedError";
  } catch (const bv::RejectedError& e) {
    EXPECT_EQ(e.queue_depth(), 4u);
  }
  EXPECT_EQ(adm.stats().shed, 1u);
  // The shed did not consume carol's token.
  adm.admit("carol", 3);
  EXPECT_EQ(adm.stats().admitted, 1u);
}

TEST(SpmvServer, ShedsAndThrottlesThroughSubmit) {
  bv::ServerOptions opts;
  opts.threads = 0;
  opts.max_queue = 16;
  opts.admission.shed_depth = 2;
  bv::SpmvServer server(opts);
  auto m = make_matrix(40, 40, 26);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 27);

  server.submit("a", x, "c1");
  server.submit("a", x, "c1");
  EXPECT_THROW(server.submit("a", x, "c1"), bv::RejectedError);
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.shed, 1u);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.submitted, 2u);
  server.drain();
}

TEST(HashRing, DeterministicAndCoversAllNodes) {
  bv::HashRing ring(4);
  ASSERT_EQ(ring.nodes(), 4);
  std::vector<int> seen(4, 0);
  for (int i = 0; i < 256; ++i) {
    const std::string key = "matrix-" + std::to_string(i);
    const int n = ring.node(key);
    ASSERT_GE(n, 0);
    ASSERT_LT(n, 4);
    EXPECT_EQ(n, ring.node(key)); // stable
    ++seen[static_cast<std::size_t>(n)];
  }
  for (int n = 0; n < 4; ++n) EXPECT_GT(seen[static_cast<std::size_t>(n)], 0);
  // A single-node ring maps everything to node 0.
  bv::HashRing one(1);
  EXPECT_EQ(one.node("anything"), 0);
}

TEST(Scheduler, DrainRacesConcurrentSubmit) {
  // Hammer drain() from one side while submitters and a dispatcher race on
  // the other: every accepted request must be served exactly once and
  // every drain() return must observe an empty, idle scheduler.
  bv::ServerOptions opts;
  opts.threads = 2;
  opts.max_queue = 64;
  opts.max_batch = 4;
  bv::SpmvServer server(opts);
  auto m = make_matrix(60, 60, 28);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 29);
  const auto ref = reference(*m, x);

  std::atomic<int> accepted{0};
  std::atomic<bool> go{true};
  std::vector<std::thread> submitters;
  std::mutex fut_mu;
  std::vector<std::future<std::vector<value_t>>> futures;
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      while (go.load()) {
        try {
          auto f = server.submit("a", x);
          ++accepted;
          std::lock_guard lk(fut_mu);
          futures.push_back(std::move(f));
        } catch (const bv::RejectedError&) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) server.drain();
  go.store(false);
  for (auto& t : submitters) t.join();
  server.drain();

  ASSERT_EQ(static_cast<int>(futures.size()), accepted.load());
  for (auto& f : futures) expect_near_ref(f.get(), ref);
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.served, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(metrics.failed, 0u);
}

TEST(SpmvServer, ShardedExecutionMatchesUnshardedBitwise) {
  auto m = make_matrix(400, 380, 30);

  bv::ServerOptions plain;
  plain.threads = 0;
  plain.format = bc::Format::kCsr;
  bv::SpmvServer unsharded(plain);
  unsharded.add_matrix("a", m);

  bv::ServerOptions sharded = plain;
  sharded.pools = 2;
  sharded.pool_threads = 2;
  sharded.shards = 3;
  sharded.shard_min_nnz = 1; // force sharding for this small matrix
  bv::SpmvServer server(sharded);
  server.add_matrix("a", m);

  const auto x = random_x(m->cols(), 31);
  auto f_plain = unsharded.submit("a", x);
  auto f_shard = server.submit("a", x);
  unsharded.drain();
  server.drain();
  const auto y_plain = f_plain.get();
  const auto y_shard = f_shard.get();
  ASSERT_EQ(y_plain.size(), y_shard.size());
  for (std::size_t r = 0; r < y_plain.size(); ++r)
    ASSERT_EQ(y_shard[r], y_plain[r]) << "row " << r; // bitwise

  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.sharded_batches, 1u);
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(unsharded.metrics().sharded_batches, 0u);
}

TEST(SpmvServer, SmallMatricesRouteUnshardedThroughPools) {
  bv::ServerOptions opts;
  opts.threads = 0;
  opts.pools = 2;
  opts.shards = 4;
  opts.shard_min_nnz = std::size_t{1} << 40; // nothing is big enough
  bv::SpmvServer server(opts);
  auto m = make_matrix(64, 64, 32);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 33);
  auto f = server.submit("a", x);
  server.drain();
  expect_near_ref(f.get(), reference(*m, x));
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.sharded_batches, 0u);
  // Placement went through the consistent-hash ring.
  auto& ex = dynamic_cast<bv::ShardedExecutor&>(server.executor());
  EXPECT_EQ(ex.pool_count(), 2);
  const int pool = ex.pool_for("a");
  EXPECT_GE(pool, 0);
  EXPECT_LT(pool, 2);
}

TEST(SpmvServer, MetricsSplitQueueWaitFromExecute) {
  bv::ServerOptions opts;
  opts.threads = 0;
  bv::SpmvServer server(opts);
  auto m = make_matrix(100, 100, 34);
  server.add_matrix("a", m);
  for (int i = 0; i < 4; ++i)
    server.submit("a", random_x(m->cols(), static_cast<std::uint64_t>(i)));
  server.drain();
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.queue_wait.count(), 4u); // one sample per request
  EXPECT_EQ(metrics.execute.count(), metrics.batches);
  EXPECT_GT(metrics.execute.max(), 0.0);
}

TEST(AdmissionController, EvictsIdleRefilledBuckets) {
  double now = 0;
  bv::AdmissionOptions opts;
  opts.rate = 1;
  opts.burst = 2;
  opts.idle_window = 10;
  bv::AdmissionController adm(opts, [&] { return now; });

  for (int i = 0; i < 100; ++i) adm.admit("client-" + std::to_string(i), 0);
  EXPECT_EQ(adm.tracked_clients(), 100u);

  // Refilled (2s at rate 1 restores the spent token) but not yet idle for
  // the window: everything stays.
  now = 9;
  adm.admit("fresh", 0);
  EXPECT_EQ(adm.tracked_clients(), 101u);

  // Past the window every refilled bucket is byte-identical to a fresh
  // one, so the sweep drops them all — only the new probe remains.
  now = 20;
  adm.admit("probe", 0);
  EXPECT_EQ(adm.tracked_clients(), 1u);

  // Eviction changed no admission decision: the stats saw only admits.
  EXPECT_EQ(adm.stats().throttled, 0u);
}

TEST(AdmissionController, KeepsUnrefilledBucketsAndCapsTrackedClients) {
  double now = 0;
  bv::AdmissionOptions opts;
  opts.rate = 0.01; // refill takes ~100s, far past the idle window
  opts.burst = 2;
  opts.idle_window = 10;
  opts.max_clients = 3;
  bv::AdmissionController adm(opts, [&] { return now; });

  adm.admit("a", 0);
  adm.admit("b", 0);
  adm.admit("c", 0);
  EXPECT_EQ(adm.tracked_clients(), 3u);

  // Idle past the window but not refilled: the sweep must keep the spent
  // buckets (evicting one would grant its client a fresh burst). The hard
  // cap then evicts exactly one LRU bucket to admit the newcomer.
  now = 20;
  adm.admit("d", 0);
  EXPECT_EQ(adm.tracked_clients(), 3u);
}

TEST(PlanCache, EraseMatrixDropsInFlightBuilds) {
  bv::PlanCache cache(std::size_t{64} << 20);
  auto m = make_matrix(600, 600, 29);

  // Race removal against the build: the builder thread starts a miss, the
  // main thread erases the matrix as soon as the building placeholder is
  // visible. Whichever side wins, no entry for the removed id may remain
  // once the build completes — the old code re-inserted it from the
  // builder, resurrecting a removed matrix in the cache.
  std::shared_ptr<be::SpmvPlan> built;
  std::thread builder(
      [&] { built = cache.get_or_build("gone", m, bc::Format::kBroEll); });
  while (cache.stats().entries == 0) std::this_thread::yield();
  cache.erase_matrix("gone");
  builder.join();

  ASSERT_NE(built, nullptr); // the in-flight caller still gets its plan
  EXPECT_EQ(cache.stats().entries, 0u);

  // The id is fully forgotten: the next build is a fresh miss that caches
  // normally again.
  cache.get_or_build("gone", m, bc::Format::kBroEll);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCache, ClearDiscardsInFlightBuilds) {
  bv::PlanCache cache(std::size_t{64} << 20);
  auto m = make_matrix(600, 600, 31);
  cache.get_or_build("done", m, bc::Format::kCsr);

  std::shared_ptr<be::SpmvPlan> built;
  std::thread builder(
      [&] { built = cache.get_or_build("building", m, bc::Format::kBroEll); });
  while (cache.stats().entries < 2) std::this_thread::yield();
  cache.clear();
  builder.join();

  ASSERT_NE(built, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(Scheduler, MaxBatchOneDisablesCoalescing) {
  bv::Scheduler sched(16, /*max_batch=*/1);
  for (int i = 0; i < 3; ++i) {
    bv::Request req;
    req.id = "m";
    req.x = {static_cast<value_t>(i)};
    sched.enqueue(std::move(req));
  }
  for (int i = 0; i < 3; ++i) {
    auto batch = sched.try_take();
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->size(), 1u); // same id queued, but no coalescing
    EXPECT_EQ((*batch)[0].x[0], static_cast<value_t>(i));
    sched.complete();
  }
  EXPECT_FALSE(sched.try_take().has_value());
}

TEST(Scheduler, CoalescingPreservesSubmissionOrderAcrossInterleavedIds) {
  bv::Scheduler sched(16, /*max_batch=*/8);
  // Interleave two matrices: a0 b0 a1 b1 a2.
  for (int i = 0; i < 5; ++i) {
    bv::Request req;
    req.id = (i % 2 == 0) ? "a" : "b";
    req.x = {static_cast<value_t>(i)};
    sched.enqueue(std::move(req));
  }
  // First take coalesces every queued "a" in submission order...
  auto batch = sched.try_take();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 3u);
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_EQ((*batch)[i].id, "a");
    EXPECT_EQ((*batch)[i].x[0], static_cast<value_t>(2 * i));
  }
  sched.complete();
  // ...and the "b" requests are untouched, still in order.
  batch = sched.try_take();
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(batch->size(), 2u);
  for (std::size_t i = 0; i < batch->size(); ++i) {
    EXPECT_EQ((*batch)[i].id, "b");
    EXPECT_EQ((*batch)[i].x[0], static_cast<value_t>(2 * i + 1));
  }
  sched.complete();
}

TEST(Scheduler, CompleteWithoutTakeThrows) {
  bv::Scheduler sched(4, 2);
  EXPECT_THROW(sched.complete(), std::runtime_error);

  bv::Request req;
  req.id = "m";
  req.x = {1.0};
  sched.enqueue(std::move(req));
  ASSERT_TRUE(sched.try_take().has_value());
  sched.complete();
  // A double complete for one take is the same driver bug.
  EXPECT_THROW(sched.complete(), std::runtime_error);
}

TEST(SpmvServer, DrainRacesActiveDispatchAndInFlightShardedBatches) {
  // drain() must block on batches that dispatch threads have already taken
  // — including row-sharded multi-pool batches whose shards are still in
  // flight across workers — and must stay correct when submits keep
  // arriving while it waits. Every accepted future resolves, exactly once.
  bv::ServerOptions opts;
  opts.threads = 2;
  opts.max_queue = 32;
  opts.max_batch = 4;
  opts.pools = 2;
  opts.pool_threads = 2;
  opts.shards = 2;
  opts.shard_min_nnz = 1; // every batch fans out over row shards
  bv::SpmvServer server(opts);
  auto m = make_matrix(300, 280, 61);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 62);
  const auto ref = reference(*m, x);

  std::atomic<int> accepted{0};
  std::atomic<bool> go{true};
  std::mutex fut_mu;
  std::vector<std::future<std::vector<value_t>>> futures;
  std::vector<std::thread> submitters;
  for (int t = 0; t < 3; ++t)
    submitters.emplace_back([&] {
      while (go.load()) {
        try {
          auto f = server.submit("a", x);
          ++accepted;
          std::lock_guard lk(fut_mu);
          futures.push_back(std::move(f));
        } catch (const bv::RejectedError&) {
          std::this_thread::yield();
        }
      }
    });

  // Several concurrent drainers: drain() is a shared-state barrier, not
  // an owner-only operation, and overlapping calls must all return.
  std::vector<std::thread> drainers;
  for (int d = 0; d < 2; ++d)
    drainers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) server.drain();
    });
  for (auto& t : drainers) t.join();
  go.store(false);
  for (auto& t : submitters) t.join();
  server.drain(); // the final drain settles everything still queued

  ASSERT_EQ(static_cast<int>(futures.size()), accepted.load());
  for (auto& f : futures) expect_near_ref(f.get(), ref);
  const auto metrics = server.metrics();
  EXPECT_EQ(metrics.served, static_cast<std::uint64_t>(accepted.load()));
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_GT(metrics.sharded_batches, 0u); // the race really covered shards
  EXPECT_EQ(metrics.sharded_batches, metrics.batches);
}

TEST(SpmvServer, DrainReturnsWithEmptyQueueUnderSubmitPressure) {
  // Weaker but sharper invariant than the race above: with submitters
  // paused at the moment drain() is called (nothing new arriving), drain
  // must leave zero pending work — poll_once() right after finds nothing.
  bv::ServerOptions opts;
  opts.threads = 2;
  opts.max_queue = 64;
  bv::SpmvServer server(opts);
  auto m = make_matrix(80, 80, 63);
  server.add_matrix("a", m);
  const auto x = random_x(m->cols(), 64);

  std::vector<std::future<std::vector<value_t>>> futures;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i) {
      try {
        futures.push_back(server.submit("a", x));
      } catch (const bv::RejectedError&) {
      }
    }
    server.drain();
    EXPECT_FALSE(server.poll_once()) << "drain left work queued";
  }
  for (auto& f : futures) EXPECT_EQ(f.get().size(), 80u);
}
