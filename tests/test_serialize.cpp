// Serialization round-trips for every BRO format, plus failure injection on
// corrupted streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/serialize.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr test_matrix(std::uint64_t seed) {
  bs::GenSpec spec;
  spec.rows = 700;
  spec.cols = 700;
  spec.mu = 10;
  spec.sigma = 4;
  spec.run = 2;
  spec.seed = seed;
  return bs::generate(spec);
}

std::vector<value_t> random_x(index_t n) {
  bro::Rng rng(41);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

template <typename Format>
void expect_same_spmv(const Format& a, const Format& b, index_t cols,
                      index_t rows) {
  const auto x = random_x(cols);
  std::vector<value_t> ya(static_cast<std::size_t>(rows));
  std::vector<value_t> yb(static_cast<std::size_t>(rows));
  a.spmv(x, ya);
  b.spmv(x, yb);
  EXPECT_EQ(ya, yb); // bitwise: same stream, same arithmetic order
}

} // namespace

TEST(Serialize, BroEllRoundTrip) {
  const bs::Csr csr = test_matrix(1);
  const auto orig = bc::BroEll::compress(bs::csr_to_ell(csr));
  std::stringstream buf;
  bc::write_bro_ell(buf, orig);
  const auto back = bc::read_bro_ell(buf);
  EXPECT_EQ(back.rows(), orig.rows());
  EXPECT_EQ(back.width(), orig.width());
  EXPECT_EQ(back.compressed_index_bytes(), orig.compressed_index_bytes());
  EXPECT_EQ(back.decompress().col_idx, orig.decompress().col_idx);
  expect_same_spmv(orig, back, csr.cols, csr.rows);
}

TEST(Serialize, BroCooRoundTrip) {
  const bs::Csr csr = test_matrix(2);
  const auto orig = bc::BroCoo::compress(bs::csr_to_coo(csr));
  std::stringstream buf;
  bc::write_bro_coo(buf, orig);
  const auto back = bc::read_bro_coo(buf);
  EXPECT_EQ(back.nnz(), orig.nnz());
  EXPECT_EQ(back.decode_rows(), orig.decode_rows());
  EXPECT_EQ(back.col_idx(), orig.col_idx());
}

TEST(Serialize, BroHybRoundTrip) {
  bs::GenSpec spec;
  spec.rows = 800;
  spec.cols = 800;
  spec.mu = 6;
  spec.sigma = 2;
  spec.spike_rows = 3;
  spec.spike_len = 300;
  spec.seed = 3;
  const bs::Csr csr = bs::generate(spec);
  const auto orig = bc::BroHyb::compress(csr);
  std::stringstream buf;
  bc::write_bro_hyb(buf, orig);
  const auto back = bc::read_bro_hyb(buf);
  EXPECT_EQ(back.split_width(), orig.split_width());
  EXPECT_EQ(back.total_nnz(), orig.total_nnz());
  EXPECT_DOUBLE_EQ(back.ell_fraction(), orig.ell_fraction());
  expect_same_spmv(orig, back, csr.cols, csr.rows);
}

TEST(Serialize, BroCsrRoundTrip) {
  const bs::Csr csr = test_matrix(4);
  const auto orig = bc::BroCsr::compress(csr);
  std::stringstream buf;
  bc::write_bro_csr(buf, orig);
  const auto back = bc::read_bro_csr(buf);
  EXPECT_EQ(back.nnz(), orig.nnz());
  EXPECT_EQ(back.bits_per_row(), orig.bits_per_row());
  EXPECT_EQ(back.decompress().col_idx, csr.col_idx);
  expect_same_spmv(orig, back, csr.cols, csr.rows);
}

TEST(Serialize, FileHelpers) {
  const std::string path = ::testing::TempDir() + "/bro_serialize_test.bro";
  const bs::Csr csr = test_matrix(5);
  const auto orig = bc::BroEll::compress(bs::csr_to_ell(csr));
  bc::save_bro_ell(path, orig);
  const auto back = bc::load_bro_ell(path);
  EXPECT_EQ(back.decompress().col_idx, orig.decompress().col_idx);
  std::remove(path.c_str());
}

TEST(Serialize, PeekFormatIdentifiesEveryTag) {
  // Each stream identifies its own format — the CLI uses this to load a
  // .bro file written with any --format, not just BRO-HYB.
  const bs::Csr csr = test_matrix(9);

  std::stringstream ell;
  bc::write_bro_ell(ell, bc::BroEll::compress(bs::csr_to_ell(csr)));
  EXPECT_EQ(bc::peek_bro_format(ell), bc::Format::kBroEll);
  // peek leaves the stream after the header; rewinding makes read_* valid.
  ell.seekg(0);
  EXPECT_NO_THROW(bc::read_bro_ell(ell));

  std::stringstream coo;
  bc::write_bro_coo(coo, bc::BroCoo::compress(bs::csr_to_coo(csr)));
  EXPECT_EQ(bc::peek_bro_format(coo), bc::Format::kBroCoo);

  std::stringstream hyb;
  bc::write_bro_hyb(hyb, bc::BroHyb::compress(csr));
  EXPECT_EQ(bc::peek_bro_format(hyb), bc::Format::kBroHyb);

  std::stringstream bcsr;
  bc::write_bro_csr(bcsr, bc::BroCsr::compress(csr));
  EXPECT_EQ(bc::peek_bro_format(bcsr), bc::Format::kBroCsr);

  std::stringstream ans;
  bc::write_bro_ans(ans, bc::BroAns::compress(bs::csr_to_ell(csr)));
  EXPECT_EQ(bc::peek_bro_format(ans), bc::Format::kBroAns);

  std::stringstream junk("not a bro stream");
  EXPECT_THROW(bc::peek_bro_format(junk), std::runtime_error);
}

// ---- failure injection ----

TEST(SerializeFailure, BadMagic) {
  std::stringstream buf;
  buf << "this is not a bro file at all, not even close";
  EXPECT_THROW(bc::read_bro_ell(buf), std::runtime_error);
}

TEST(SerializeFailure, WrongTag) {
  const bs::Csr csr = test_matrix(6);
  std::stringstream buf;
  bc::write_bro_ell(buf, bc::BroEll::compress(bs::csr_to_ell(csr)));
  EXPECT_THROW(bc::read_bro_coo(buf), std::runtime_error);
}

TEST(SerializeFailure, Truncated) {
  const bs::Csr csr = test_matrix(7);
  std::stringstream buf;
  bc::write_bro_ell(buf, bc::BroEll::compress(bs::csr_to_ell(csr)));
  const std::string full = buf.str();
  for (const double frac : {0.3, 0.7, 0.95}) {
    std::stringstream cut(full.substr(0, static_cast<std::size_t>(
                                             full.size() * frac)));
    EXPECT_THROW(bc::read_bro_ell(cut), std::runtime_error) << frac;
  }
}

TEST(SerializeFailure, CorruptedSizeField) {
  const bs::Csr csr = test_matrix(8);
  std::stringstream buf;
  bc::write_bro_ell(buf, bc::BroEll::compress(bs::csr_to_ell(csr)));
  std::string bytes = buf.str();
  // Stomp the slice count (offset: magic 4 + version 4 + tag 1 + rows/cols/
  // width 12 + options 8 = 29) with an absurd value.
  for (int i = 0; i < 8; ++i) bytes[29 + i] = '\xff';
  std::stringstream bad(bytes);
  EXPECT_THROW(bc::read_bro_ell(bad), std::runtime_error);
}

TEST(SerializeFailure, MissingFile) {
  EXPECT_THROW(bc::load_bro_ell("/nonexistent/x.bro"), std::runtime_error);
  EXPECT_THROW(bc::load_bro_hyb("/nonexistent/x.bro"), std::runtime_error);
}
