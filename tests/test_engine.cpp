// Engine tests: the format registry (completeness, lookup, auto-selection)
// and the plan/execute split (correctness per format, allocation-free
// repeated apply, solver integration).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/matrix.h"
#include "engine/format_registry.h"
#include "engine/plan.h"
#include "solver/cg.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace be = bro::engine;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

// A matrix with a few very long rows: not ELL-viable, and its BRO-HYB form
// has a non-empty COO overflow part, which exercises every plan workspace.
bs::Csr spiked_matrix() {
  bs::GenSpec spec;
  spec.rows = 800;
  spec.cols = 800;
  spec.mu = 5;
  spec.sigma = 2;
  spec.spike_rows = 3;
  spec.spike_len = 600;
  spec.seed = 17;
  return bs::generate(spec);
}

std::vector<value_t> reference_y(const bs::Csr& csr,
                                 const std::vector<value_t>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y);
  return y;
}

std::vector<value_t> random_x(index_t cols, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(cols));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

} // namespace

TEST(FormatRegistry, CoversEveryFormatInEnumOrder) {
  const auto& reg = be::format_registry();
  ASSERT_EQ(reg.size(), 11u);
  std::set<std::string> names;
  for (std::size_t i = 0; i < reg.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(reg[i].format), i);
    EXPECT_TRUE(names.insert(reg[i].name).second)
        << "duplicate name " << reg[i].name;
    // Every entry must be able to hold a matrix and apply it.
    EXPECT_NE(reg[i].applicable, nullptr);
    EXPECT_NE(reg[i].apply, nullptr);
  }
}

TEST(FormatRegistry, TraitsAndNameLookupRoundTrip) {
  for (const auto& t : be::format_registry()) {
    EXPECT_EQ(&be::traits(t.format), &t);
    EXPECT_EQ(be::find_format(t.name), &t);
    EXPECT_STREQ(bc::format_name(t.format), t.name);
  }
  EXPECT_EQ(be::find_format("NO-SUCH-FORMAT"), nullptr);
  EXPECT_EQ(be::find_format(""), nullptr);
  EXPECT_EQ(be::format_names().size(), be::format_registry().size());
}

TEST(FormatRegistry, AutoSelectMatchesPaperHeuristic) {
  // Regular rows: BRO-ELL. Wild row-length variance: BRO-HYB.
  EXPECT_EQ(be::auto_select(bs::generate_poisson2d(30, 30), 3.0),
            bc::Format::kBroEll);
  EXPECT_EQ(be::auto_select(spiked_matrix(), 3.0), bc::Format::kBroHyb);

  // Empty matrix: nothing to compress; the CSR reference holds it.
  bs::Csr empty;
  empty.rows = 4;
  empty.cols = 4;
  empty.row_ptr.assign(5, 0);
  EXPECT_EQ(be::auto_select(empty, 3.0), bc::Format::kCsr);

  // The facade delegates to the same selection.
  EXPECT_EQ(bc::Matrix::from_csr(bs::generate_poisson2d(30, 30)).auto_format(),
            bc::Format::kBroEll);
}

TEST(SpmvPlan, EveryFormatMatchesCsrReference) {
  const bs::Csr csr = spiked_matrix();
  const auto x = random_x(csr.cols, 5);
  const auto y_ref = reference_y(csr, x);
  const auto m = std::make_shared<bc::Matrix>(bc::Matrix::from_csr(csr));

  for (const auto& t : be::format_registry()) {
    // The spiked matrix is not ELL-viable; padding it would expand nnz by
    // ~100x, so skip formats whose predicate rejects it.
    if (!t.applicable(csr, 3.0)) continue;
    be::SpmvPlan plan(m, t.format);
    EXPECT_EQ(plan.format(), t.format);
    EXPECT_EQ(&plan.format_traits(), &t);
    std::vector<value_t> y(y_ref.size(), -7.0);
    plan.execute(x, y);
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << t.name << " row " << r;
  }
}

TEST(SpmvPlan, RepeatedExecuteDoesNotAllocate) {
  const bs::Csr csr = spiked_matrix();
  const auto x = random_x(csr.cols, 6);
  const auto m = std::make_shared<bc::Matrix>(bc::Matrix::from_csr(csr));
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));

  for (const auto& t : be::format_registry()) {
    if (!t.applicable(csr, 3.0)) continue;
    be::SpmvPlan plan(m, t.format);
    // Construction pre-sizes every workspace the kernel will request.
    const std::size_t after_build = plan.workspace_allocations();
    for (int i = 0; i < 5; ++i) plan.execute(x, y);
    EXPECT_EQ(plan.workspace_allocations(), after_build)
        << t.name << ": execute() grew a plan workspace";
  }
}

TEST(SpmvPlan, AutoFormatAndConvenienceBuilders) {
  const bs::Csr csr = bs::generate_poisson2d(25, 25);
  const auto x = random_x(csr.cols, 7);
  const auto y_ref = reference_y(csr, x);

  be::SpmvPlan plan = be::make_plan(bc::Matrix::from_csr(csr));
  EXPECT_EQ(plan.format(), bc::Format::kBroEll); // the auto-selection
  EXPECT_EQ(plan.rows(), csr.rows);
  EXPECT_EQ(plan.cols(), csr.cols);

  std::vector<value_t> y(y_ref.size());
  plan.execute(x, y);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])));

  const auto shared = be::make_shared_plan(bc::Matrix::from_csr(csr),
                                           bc::Format::kCoo);
  EXPECT_EQ(shared->format(), bc::Format::kCoo);
}

TEST(SpmvPlan, OperatorDrivesCgToConvergence) {
  const bs::Csr a = bs::generate_poisson2d(20, 20);
  const std::size_t n = static_cast<std::size_t>(a.rows);
  const std::vector<value_t> x_true(n, 1.0);
  const auto b = reference_y(a, x_true);

  const bro::solver::Operator op =
      be::plan_operator(be::make_shared_plan(bc::Matrix::from_csr(a)));
  std::vector<value_t> x(n, 0.0);
  const auto res = bro::solver::cg(op, b, x);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], 1.0, 1e-6);
}

TEST(SpmvPlan, ChecksOperandSizes) {
  const auto m = std::make_shared<bc::Matrix>(
      bc::Matrix::from_csr(bs::generate_poisson2d(8, 8)));
  be::SpmvPlan plan(m, bc::Format::kCsr);
  std::vector<value_t> x(static_cast<std::size_t>(m->cols()));
  std::vector<value_t> y_short(static_cast<std::size_t>(m->rows()) - 1);
  EXPECT_THROW(plan.execute(x, y_short), std::exception);
}

// ---- Workspace::coo_ranges cache keying ----
//
// The COO row-range split is cached inside the plan workspace. The cache key
// must cover everything the split depends on: the matrix identity AND its
// entry count AND the thread count. Keying on the pointer alone reuses a
// stale split when the same object is mutated in place (or when a different
// matrix is allocated at a recycled address with equal nnz by chance).

TEST(Workspace, CooRangesRekeyWhenMatrixMutatesInPlace) {
  be::Workspace ws;
  bro::sparse::Coo a = bs::csr_to_coo(bs::generate_poisson2d(10, 10));
  const auto first = ws.coo_ranges(a);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first.back().hi, a.nnz());

  // Same object, same address, more entries: the split must be recomputed —
  // a stale one would make the native COO kernel drop the appended tail.
  const std::size_t old_nnz = a.nnz();
  for (index_t r = 0; r < a.rows; ++r) a.push(r, a.cols - 1, 0.5);
  a.canonicalize();
  ASSERT_NE(a.nnz(), old_nnz);
  const auto second = ws.coo_ranges(a);
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(second.back().hi, a.nnz());

  std::size_t covered = 0;
  for (const auto& rg : second) covered += rg.hi - rg.lo;
  EXPECT_EQ(covered, a.nnz());
}

TEST(Workspace, CooRangesRekeyAcrossDistinctMatrices) {
  be::Workspace ws;
  bro::sparse::Coo a = bs::csr_to_coo(bs::generate_poisson2d(8, 8));
  bro::sparse::Coo b = bs::csr_to_coo(bs::generate_poisson2d(12, 12));
  ws.coo_ranges(a);
  EXPECT_EQ(ws.coo_ranges(b).back().hi, b.nnz());
  EXPECT_EQ(ws.coo_ranges(a).back().hi, a.nnz());
  // Re-requesting the cached matrix without changes must not reallocate.
  const std::size_t allocs = ws.allocations();
  ws.coo_ranges(a);
  EXPECT_EQ(ws.allocations(), allocs);
}

#ifdef _OPENMP
TEST(Workspace, CooRangesRekeyOnThreadCountChange) {
  const int saved = omp_get_max_threads();
  be::Workspace ws;
  bro::sparse::Coo a = bs::csr_to_coo(bs::generate_poisson2d(12, 12));

  omp_set_num_threads(2);
  const auto two = ws.coo_ranges(a);
  EXPECT_LE(two.size(), 2u);
  EXPECT_EQ(two.back().hi, a.nnz());

  // A thread-count change invalidates the split: a 2-way split executed by
  // 4 threads leaves half of them idle; the reverse races on shared rows.
  omp_set_num_threads(4);
  const auto four = ws.coo_ranges(a);
  EXPECT_GT(four.size(), two.size());
  EXPECT_EQ(four.back().hi, a.nnz());

  omp_set_num_threads(saved);
}
#endif
