// Autotuner tests: the ranking must be complete, consistent with direct
// simulation, and pick sensible winners for characteristic matrix shapes.
#include <gtest/gtest.h>

#include <set>

#include "engine/autotune.h"
#include "engine/format_registry.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"

namespace bk = bro::engine;
namespace bc = bro::core;
namespace bs = bro::sparse;
namespace gs = bro::sim;
using bro::index_t;

TEST(Autotune, RankingIsSortedAndComplete) {
  const bs::Csr csr = bs::generate_poisson2d(60, 60);
  const auto res = bk::autotune(csr, gs::tesla_k20());
  ASSERT_GE(res.ranking.size(), 7u);
  for (std::size_t i = 1; i < res.ranking.size(); ++i) {
    if (res.ranking[i].applicable) {
      EXPECT_LE(res.ranking[i].gflops, res.ranking[i - 1].gflops);
    }
  }
  // Every format appears exactly once.
  std::set<bc::Format> seen;
  for (const auto& e : res.ranking) EXPECT_TRUE(seen.insert(e.format).second);
}

TEST(Autotune, RegularMatrixPrefersCompressedFormat) {
  const auto entry = bs::find_suite_entry("cant");
  const bs::Csr csr = bs::generate_suite_matrix(*entry, 1.0 / 16.0);
  const auto res = bk::autotune(csr, gs::tesla_k20());
  // At this (small) launch size either BRO-ELL or the warp-per-row BRO-CSR
  // extension wins; both are compressed formats. BRO-ELL must beat plain
  // ELLPACK regardless.
  EXPECT_TRUE(res.best() == bc::Format::kBroEll ||
              res.best() == bc::Format::kBroCsr)
      << bc::format_name(res.best());
  double g_ell = 0, g_bro = 0;
  for (const auto& e : res.ranking) {
    if (e.format == bc::Format::kEll) g_ell = e.gflops;
    if (e.format == bc::Format::kBroEll) g_bro = e.gflops;
  }
  EXPECT_GT(g_bro, g_ell);
}

TEST(Autotune, SpikedMatrixExcludesEllFamily) {
  bs::GenSpec spec;
  spec.rows = 1500;
  spec.cols = 1500;
  spec.mu = 5;
  spec.sigma = 2;
  spec.spike_rows = 3;
  spec.spike_len = 1200;
  spec.seed = 6;
  const bs::Csr csr = bs::generate(spec);
  const auto res = bk::autotune(csr, gs::tesla_k20());
  for (const auto& e : res.ranking) {
    if (e.format == bc::Format::kEll || e.format == bc::Format::kEllR ||
        e.format == bc::Format::kBroEll)
      EXPECT_FALSE(e.applicable);
    else if (e.format == bc::Format::kBroBcsr)
      // A random spiked pattern has no block structure; the cover gate
      // (fill + byte-win) must keep BRO-BCSR out too.
      EXPECT_FALSE(e.applicable);
    else
      EXPECT_TRUE(e.applicable);
  }
  // The winner must be an applicable format.
  EXPECT_TRUE(res.ranking.front().applicable);
}

TEST(Autotune, PureDiagonalNeverPicksBcsr) {
  // A pure diagonal is the worst block cover: every r x c tile holds one
  // real entry, so the fill-adjusted cost model must reject every shape and
  // the tuner must never rank BRO-BCSR as applicable, let alone pick it.
  bs::Coo coo;
  coo.rows = 2048;
  coo.cols = 2048;
  for (index_t i = 0; i < 2048; ++i) coo.push(i, i, 1.0 + i * 0.001);
  coo.canonicalize();
  const bs::Csr csr = bs::coo_to_csr(coo);
  const auto res = bk::autotune(csr, gs::tesla_k20());
  for (const auto& e : res.ranking) {
    if (e.format == bc::Format::kBroBcsr) EXPECT_FALSE(e.applicable);
  }
  EXPECT_NE(res.best(), bc::Format::kBroBcsr);
  // Same conclusion at the registry auto-selection layer.
  EXPECT_NE(bk::auto_select(csr, 3.0), bc::Format::kBroBcsr);
}

TEST(Autotune, TrussFemAutoSelectsBcsr) {
  // The Test Set 3 truss assembly is the workload BRO-BCSR exists for: the
  // 2x2 dof cover must pass the applicability gate and, having the highest
  // auto-selection priority, win it.
  const auto entry = bs::find_suite_entry("fem");
  ASSERT_TRUE(entry.has_value());
  const bs::Csr csr = bs::generate_suite_matrix(*entry, 0.25);
  EXPECT_EQ(bk::auto_select(csr, 3.0), bc::Format::kBroBcsr);
  // And no paper-suite Test Set 1 matrix may ever make that choice.
  for (const auto& e : bs::suite_test_set(1)) {
    const bs::Csr m = bs::generate_suite_matrix(e, 1.0 / 8.0);
    EXPECT_NE(bk::auto_select(m, 3.0), bc::Format::kBroBcsr) << e.name;
  }
}

TEST(Autotune, CompressedFormatsReportSavings) {
  const bs::Csr csr = bs::generate_poisson2d(50, 50);
  const auto res = bk::autotune(csr, gs::tesla_c2070());
  for (const auto& e : res.ranking) {
    const auto& t = bk::traits(e.format);
    if (!t.compressed) {
      EXPECT_DOUBLE_EQ(e.eta, 0.0) << t.name;
    } else if (e.format == bc::Format::kBroCoo) {
      // BRO-COO pads the nnz stream to whole intervals, which can exceed
      // the bit savings on tiny matrices; the accounting must still be
      // sane (bounded, not wildly negative).
      EXPECT_GT(e.eta, -0.5);
    } else if (e.applicable) {
      EXPECT_GT(e.eta, 0.0) << t.name;
    }
  }
}

TEST(Autotune, ExtensionsCanBeExcluded) {
  const bs::Csr csr = bs::generate_poisson2d(30, 30);
  bk::TuneOptions opts;
  opts.include_extensions = false;
  const auto res = bk::autotune(csr, gs::tesla_k20(), opts);
  for (const auto& e : res.ranking)
    EXPECT_NE(e.format, bc::Format::kBroCsr);
}

TEST(Autotune, DeterministicAcrossCalls) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  const auto a = bk::autotune(csr, gs::gtx680());
  const auto b = bk::autotune(csr, gs::gtx680());
  ASSERT_EQ(a.ranking.size(), b.ranking.size());
  for (std::size_t i = 0; i < a.ranking.size(); ++i) {
    EXPECT_EQ(a.ranking[i].format, b.ranking[i].format);
    EXPECT_DOUBLE_EQ(a.ranking[i].gflops, b.ranking[i].gflops);
  }
}
