// Width-specialized decode dispatch tests: plan-time kernel selection rules
// and the bitwise-parity property the dispatch rests on — for every forced
// bit width, symbol length, adversarial matrix shape AND every SIMD ISA this
// host can run, the dispatched SpMV/SpMM kernels must reproduce the generic
// runtime-width scalar decoder's result bit for bit (same algorithm, same
// traversal, same accumulation order; only the unpacking code differs).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/bro_coo.h"
#include "core/bro_ell.h"
#include "core/bro_hyb.h"
#include "kernels/bro_decode_simd.h"
#include "kernels/cpu_features.h"
#include "kernels/native_spmm.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace bc = bro::core;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

/// Every ISA the parity sweeps can actually force on this host/binary:
/// scalar always, each SIMD set when compiled in and supported by the CPU.
std::vector<bk::SimdIsa> host_isas() {
  std::vector<bk::SimdIsa> isas = {bk::SimdIsa::kScalar};
  for (const bk::SimdIsa isa : {bk::SimdIsa::kSse4, bk::SimdIsa::kAvx2})
    if (bk::simd_isa_runnable(isa)) isas.push_back(isa);
  return isas;
}

void expect_bitwise(const std::vector<value_t>& got,
                    const std::vector<value_t>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t r = 0; r < want.size(); ++r)
    ASSERT_EQ(std::memcmp(&got[r], &want[r], sizeof(value_t)), 0)
        << what << " diverges at row " << r << ": " << got[r] << " vs "
        << want[r];
}

/// The selection rules: uniform-width slices take the matching specialized
/// kernel, widths above kMaxSpecializedDecodeWidth and mixed-width slices
/// take the generic one (width -1), and the table is slice-aligned.
TEST(DecodeDispatch, EllSelectionUniformWidth) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  bool saw_specialized = false;
  for (const int w : {1, 5, 24}) {
    // forced_bit_width is a floor, not a cap: a column whose deltas need
    // more bits keeps its natural width, so derive the expected kernel
    // width from each slice's actual allocation.
    bc::BroEllOptions opt;
    opt.forced_bit_width = w;
    const auto bro = bc::BroEll::compress(bs::csr_to_ell(csr), opt);
    const auto kernels = bk::plan_bro_ell_kernels(bro);
    ASSERT_EQ(kernels.size(), bro.slices().size());
    for (std::size_t s = 0; s < kernels.size(); ++s) {
      const auto& alloc = bro.slices()[s].bit_alloc;
      ASSERT_FALSE(alloc.empty());
      const int first = alloc.front();
      const bool uniform =
          std::all_of(alloc.begin(), alloc.end(),
                      [first](std::uint8_t b) { return b == first; });
      const int expected =
          uniform && first <= bk::kMaxSpecializedDecodeWidth ? first : -1;
      EXPECT_EQ(kernels[s].width, expected) << "slice " << s;
      saw_specialized = saw_specialized || kernels[s].width >= 0;
      EXPECT_NE(kernels[s].spmv, nullptr);
      EXPECT_NE(kernels[s].spmm, nullptr);
    }
  }
  EXPECT_TRUE(saw_specialized);
}

TEST(DecodeDispatch, EllSelectionWideAndMixedFallBack) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  bc::BroEllOptions opt;
  opt.forced_bit_width = bk::kMaxSpecializedDecodeWidth + 4;
  const auto wide = bc::BroEll::compress(bs::csr_to_ell(csr), opt);
  for (const auto& kernel : bk::plan_bro_ell_kernels(wide))
    EXPECT_EQ(kernel.width, -1);

  // A spike matrix mixes per-column widths within one slice: one long row
  // with large deltas next to short local rows.
  bs::GenSpec spec;
  spec.rows = 64;
  spec.cols = 4096;
  spec.mu = 6;
  spec.spike_rows = 2;
  spec.spike_len = 2000;
  spec.seed = 9;
  const auto mixed =
      bc::BroEll::compress(bs::csr_to_ell(bs::generate(spec)));
  bool saw_generic = false;
  for (const auto& kernel : bk::plan_bro_ell_kernels(mixed))
    saw_generic = saw_generic || kernel.width == -1;
  EXPECT_TRUE(saw_generic);
}

TEST(DecodeDispatch, CooSelectionMatchesIntervalBits) {
  const bs::Csr csr = bs::generate_poisson2d(50, 50);
  const auto bro = bc::BroCoo::compress(bs::csr_to_coo(csr));
  const auto kernels = bk::plan_bro_coo_kernels(bro);
  ASSERT_EQ(kernels.size(), bro.intervals().size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const int bits = bro.intervals()[i].bits;
    EXPECT_EQ(kernels[i].width,
              bits <= bk::kMaxSpecializedDecodeWidth ? bits : -1)
        << "interval " << i;
    EXPECT_NE(kernels[i].spmv, nullptr);
    EXPECT_NE(kernels[i].spmm, nullptr);
  }
}

/// One (matrix, width, sym_len) parity probe, swept across every host ISA:
/// dispatched SpMV and SpMM against the always-scalar generic decoder,
/// bitwise. The compression is ISA-independent and done once.
void check_parity(const bs::Csr& csr, int width, int sym_len,
                  const char* name) {
  if (csr.nnz() == 0 || csr.rows == 0) return;
  const auto x = random_x(csr.cols, 77);
  const std::size_t rows = static_cast<std::size_t>(csr.rows);
  std::vector<value_t> y(rows), y_gen(rows);

  // BRO-ELL: forced_bit_width drives the slice widths through the whole
  // specializable range (columns needing more bits keep their natural
  // width, which also exercises mixed slices).
  bc::BroEllOptions eopt;
  eopt.sym_len = sym_len;
  eopt.forced_bit_width = width;
  const auto ell = bc::BroEll::compress(bs::csr_to_ell(csr), eopt);

  const int k = 3;
  std::vector<value_t> ym(rows * k), ym_gen(rows * k);
  std::vector<value_t> xm(static_cast<std::size_t>(csr.cols) * k);
  for (std::size_t c = 0; c < static_cast<std::size_t>(csr.cols); ++c)
    for (int j = 0; j < k; ++j)
      xm[c * k + static_cast<std::size_t>(j)] =
          x[(c + static_cast<std::size_t>(j)) % x.size()];

  for (const bk::SimdIsa isa : host_isas()) {
    bk::ScopedSimdIsa forced(isa);
    bk::native_spmv_bro_ell(ell, x, y);
    bk::native_spmv_bro_ell_generic(ell, x, y_gen);
    expect_bitwise(y, y_gen, name);

    const auto table = bk::plan_bro_ell_kernels(ell);
    std::vector<bk::BroEllKernel> generic_table(
        table.size(), bk::generic_bro_ell_kernel(sym_len));
    bk::native_spmm_bro_ell(ell, table, xm, ym, k);
    bk::native_spmm_bro_ell(ell, generic_table, xm, ym_gen, k);
    expect_bitwise(ym, ym_gen, name);
  }
}

TEST(DecodeDispatch, EllParityAcrossWidthsAndSymLens) {
  const bs::Csr grid = bs::generate_poisson2d(37, 29);
  bs::GenSpec spec;
  spec.rows = 300;
  spec.cols = 9000;
  spec.mu = 9;
  spec.sigma = 5;
  spec.seed = 21;
  const bs::Csr wide = bs::generate(spec);
  for (int width = 0; width <= 32; ++width)
    for (const int sym_len : {32, 64}) {
      check_parity(grid, width, sym_len, "grid");
      check_parity(wide, width, sym_len, "wide");
    }
}

/// The adversarial battery at its natural widths: every degenerate shape,
/// both symbol lengths, SpMV and SpMM, BRO-ELL + BRO-COO + BRO-HYB.
TEST(DecodeDispatch, AdversarialParity) {
  for (auto& adversarial : bs::adversarial_suite(5)) {
    const bs::Csr& csr = adversarial.csr;
    if (csr.nnz() == 0 || csr.rows == 0) continue;
    const auto x = random_x(csr.cols, 31);
    const std::size_t rows = static_cast<std::size_t>(csr.rows);
    std::vector<value_t> y(rows), y_gen(rows);

    for (const int sym_len : {32, 64}) {
      // ELL blows up on spike shapes; gate like the registry does. All
      // compressions are ISA-independent, so build once per sym_len and
      // sweep the dispatch ISA over the kernel calls only.
      const double expand = static_cast<double>(csr.rows) *
                            static_cast<double>(csr.max_row_length());
      const bool ell_ok = expand <= 3.0 * static_cast<double>(csr.nnz());
      bc::BroEllOptions eopt;
      eopt.sym_len = sym_len;
      const auto ell = ell_ok ? bc::BroEll::compress(bs::csr_to_ell(csr), eopt)
                              : bc::BroEll();

      bc::BroCooOptions copt;
      copt.sym_len = sym_len;
      const auto coo = bc::BroCoo::compress(bs::csr_to_coo(csr), copt);
      const auto hyb = bc::BroHyb::compress(csr);

      const int k = 2;
      const std::size_t n = coo.intervals().size();
      std::vector<bk::BroCooCarry> carries(n);
      std::vector<value_t> sums(n * 2 * k);
      std::vector<value_t> ym(rows * k), ym_gen(rows * k);
      std::vector<value_t> xm(static_cast<std::size_t>(csr.cols) * k);
      for (std::size_t c = 0; c < static_cast<std::size_t>(csr.cols); ++c)
        for (int j = 0; j < k; ++j)
          xm[c * k + static_cast<std::size_t>(j)] =
              x[(c + static_cast<std::size_t>(j)) % x.size()];

      for (const bk::SimdIsa isa : host_isas()) {
        bk::ScopedSimdIsa forced(isa);
        if (ell_ok) {
          bk::native_spmv_bro_ell(ell, x, y);
          bk::native_spmv_bro_ell_generic(ell, x, y_gen);
          expect_bitwise(y, y_gen, adversarial.name.c_str());
        }

        bk::native_spmv_bro_coo(coo, x, y);
        bk::native_spmv_bro_coo_generic(coo, x, y_gen);
        expect_bitwise(y, y_gen, adversarial.name.c_str());

        const auto table = bk::plan_bro_coo_kernels(coo);
        std::vector<bk::BroCooKernel> generic_table(
            table.size(), bk::generic_bro_coo_kernel(sym_len));
        bk::native_spmm_bro_coo(coo, table, xm, ym, k, carries, sums);
        bk::native_spmm_bro_coo(coo, generic_table, xm, ym_gen, k, carries,
                                sums);
        expect_bitwise(ym, ym_gen, adversarial.name.c_str());

        bk::native_spmv_bro_hyb(hyb, x, y);
        bk::native_spmv_bro_hyb_generic(hyb, x, y_gen);
        expect_bitwise(y, y_gen, adversarial.name.c_str());
      }
    }
  }
}

/// Exotic warp widths cross the transposed-decode cutoff (w > kMaxCooLanes
/// takes the lane-at-a-time path): parity must hold on both sides.
TEST(DecodeDispatch, CooParityAcrossWarpSizes) {
  bs::GenSpec spec;
  spec.rows = 700;
  spec.cols = 900;
  spec.mu = 8;
  spec.sigma = 6;
  spec.seed = 3;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols, 13);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows)),
      y_gen(static_cast<std::size_t>(csr.rows));
  for (const int warp : {1, 2, 32, 160}) {
    bc::BroCooOptions opt;
    opt.warp_size = warp;
    opt.interval_cols = 16;
    const auto coo = bc::BroCoo::compress(bs::csr_to_coo(csr), opt);
    for (const bk::SimdIsa isa : host_isas()) {
      bk::ScopedSimdIsa forced(isa);
      bk::native_spmv_bro_coo(coo, x, y);
      bk::native_spmv_bro_coo_generic(coo, x, y_gen);
      expect_bitwise(y, y_gen, "warp-sweep");
    }
  }
}

/// When a SIMD ISA is forced, every planned kernel-table entry must be
/// tagged with it and point at that ISA's kernel set functions; forcing
/// scalar must restore the baseline selection (isa tag kScalar).
TEST(DecodeDispatch, SimdSelectionTagsKernels) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  for (const int sym_len : {32, 64}) {
    bc::BroEllOptions eopt;
    eopt.sym_len = sym_len;
    const auto ell = bc::BroEll::compress(bs::csr_to_ell(csr), eopt);
    bc::BroCooOptions copt;
    copt.sym_len = sym_len;
    const auto coo = bc::BroCoo::compress(bs::csr_to_coo(csr), copt);

    for (const bk::SimdIsa isa : host_isas()) {
      bk::ScopedSimdIsa forced(isa);
      const auto* set = bk::simd_kernel_set(isa);
      if (isa != bk::SimdIsa::kScalar) {
        ASSERT_NE(set, nullptr);
      }

      for (const auto& kernel : bk::plan_bro_ell_kernels(ell)) {
        EXPECT_EQ(kernel.isa, isa);
        if (set != nullptr) {
          EXPECT_EQ(kernel.spmv,
                    sym_len == 32 ? set->ell_spmv32 : set->ell_spmv64);
          EXPECT_EQ(kernel.spmm,
                    sym_len == 32 ? set->ell_spmm32 : set->ell_spmm64);
        }
      }
      for (const auto& kernel : bk::plan_bro_coo_kernels(coo)) {
        EXPECT_EQ(kernel.isa, isa);
        if (set != nullptr) {
          EXPECT_EQ(kernel.spmv,
                    sym_len == 32 ? set->coo_spmv32 : set->coo_spmv64);
          EXPECT_EQ(kernel.spmm,
                    sym_len == 32 ? set->coo_spmm32 : set->coo_spmm64);
        }
      }
    }
  }
}

/// The resolution rule is a pure clamp: explicit requests are honored but
/// never exceed `best`, and no request takes `best` as-is.
TEST(DecodeDispatch, ResolveSimdIsaClamps) {
  using I = bk::SimdIsa;
  EXPECT_EQ(bk::resolve_simd_isa(std::nullopt, I::kAvx2), I::kAvx2);
  EXPECT_EQ(bk::resolve_simd_isa(std::nullopt, I::kScalar), I::kScalar);
  EXPECT_EQ(bk::resolve_simd_isa(I::kAvx2, I::kAvx2), I::kAvx2);
  EXPECT_EQ(bk::resolve_simd_isa(I::kAvx2, I::kSse4), I::kSse4);
  EXPECT_EQ(bk::resolve_simd_isa(I::kAvx2, I::kScalar), I::kScalar);
  EXPECT_EQ(bk::resolve_simd_isa(I::kSse4, I::kAvx2), I::kSse4);
  EXPECT_EQ(bk::resolve_simd_isa(I::kScalar, I::kAvx2), I::kScalar);
}

TEST(DecodeDispatch, ParseSimdIsaNames) {
  EXPECT_EQ(bk::parse_simd_isa("scalar"), bk::SimdIsa::kScalar);
  EXPECT_EQ(bk::parse_simd_isa("sse4"), bk::SimdIsa::kSse4);
  EXPECT_EQ(bk::parse_simd_isa("avx2"), bk::SimdIsa::kAvx2);
  EXPECT_EQ(bk::parse_simd_isa("AVX2"), std::nullopt);
  EXPECT_EQ(bk::parse_simd_isa(""), std::nullopt);
  EXPECT_EQ(bk::parse_simd_isa("neon"), std::nullopt);
  for (const bk::SimdIsa isa :
       {bk::SimdIsa::kScalar, bk::SimdIsa::kSse4, bk::SimdIsa::kAvx2})
    EXPECT_EQ(bk::parse_simd_isa(bk::simd_isa_name(isa)), isa);
}

/// With no ScopedSimdIsa live, the active ISA is exactly the env request
/// resolved against the host's best — the documented layering.
TEST(DecodeDispatch, ActiveIsaMatchesResolution) {
  EXPECT_EQ(bk::active_simd_isa(),
            bk::resolve_simd_isa(bk::simd_env_override(), bk::best_simd_isa()));
  // A scoped force wins over the environment, and restores on exit.
  const bk::SimdIsa before = bk::active_simd_isa();
  {
    bk::ScopedSimdIsa forced(bk::SimdIsa::kScalar);
    EXPECT_EQ(bk::active_simd_isa(), bk::SimdIsa::kScalar);
  }
  EXPECT_EQ(bk::active_simd_isa(), before);
}

} // namespace
