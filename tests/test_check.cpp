// bro::check tests: the per-format invariant validators (clean
// representations pass, corrupted ones report specific violations, a
// mismatched reference is caught as a losslessness failure), the
// adversarial matrix battery, and the differential fuzz driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "check/differential.h"
#include "check/validate.h"
#include "core/matrix.h"
#include "engine/format_registry.h"
#include "sparse/convert.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"

namespace bc = bro::core;
namespace be = bro::engine;
namespace bs = bro::sparse;
namespace ck = bro::check;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr sample_matrix(std::uint64_t seed = 11) {
  bs::GenSpec spec;
  spec.rows = 300;
  spec.cols = 280;
  spec.mu = 6;
  spec.sigma = 3;
  spec.seed = seed;
  return bs::generate(spec);
}

std::string joined(const ck::Issues& issues) {
  std::string out;
  for (const auto& i : issues) out += i + "; ";
  return out;
}

} // namespace

// ---- clean representations pass through the registry hook ----

TEST(Validate, EveryRegisteredFormatValidatesCleanMatrices) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const bs::Csr csr = sample_matrix(seed);
    const auto m = bc::Matrix::from_csr(csr);
    for (const auto& t : be::format_registry()) {
      if (!t.applicable(csr, 3.0)) continue;
      ASSERT_NE(t.validate, nullptr) << t.name;
      const auto issues = t.validate(m);
      EXPECT_TRUE(issues.empty())
          << t.name << " (seed " << seed << "): " << joined(issues);
    }
  }
}

TEST(Validate, RegistryHooksAreFullyPopulated) {
  for (const auto& t : be::format_registry()) {
    EXPECT_NE(t.validate, nullptr) << t.name;
    EXPECT_NE(t.sim_apply, nullptr) << t.name;
  }
}

// ---- structural corruption is caught ----

TEST(Validate, CsrCatchesNonMonotoneRowPtr) {
  bs::Csr a = sample_matrix();
  ASSERT_TRUE(ck::validate_csr(a).empty());
  std::swap(a.row_ptr[2], a.row_ptr[5]);
  EXPECT_FALSE(ck::validate_csr(a).empty());
}

TEST(Validate, CsrCatchesOutOfRangeAndUnsortedColumns) {
  bs::Csr a = sample_matrix();
  bs::Csr bad_range = a;
  bad_range.col_idx[3] = a.cols + 7;
  EXPECT_FALSE(ck::validate_csr(bad_range).empty());

  bs::Csr unsorted = a;
  // Reverse one row's columns (first row with >= 2 entries).
  for (index_t r = 0; r < unsorted.rows; ++r) {
    if (unsorted.row_ptr[r + 1] - unsorted.row_ptr[r] >= 2) {
      std::reverse(unsorted.col_idx.begin() + unsorted.row_ptr[r],
                   unsorted.col_idx.begin() + unsorted.row_ptr[r + 1]);
      break;
    }
  }
  EXPECT_FALSE(ck::validate_csr(unsorted).empty());
}

TEST(Validate, CooCatchesNonCanonicalOrder) {
  const bs::Csr csr = sample_matrix();
  bs::Coo a = bs::csr_to_coo(csr);
  ASSERT_TRUE(ck::validate_coo(a, &csr).empty());
  std::swap(a.row_idx.front(), a.row_idx.back());
  std::swap(a.col_idx.front(), a.col_idx.back());
  std::swap(a.vals.front(), a.vals.back());
  EXPECT_FALSE(ck::validate_coo(a).empty());
}

TEST(Validate, EllCatchesDataAfterPadding) {
  const bs::Csr csr = sample_matrix();
  bs::Ell a = bs::csr_to_ell(csr);
  ASSERT_TRUE(ck::validate_ell(a, &csr).empty());
  // Find a padding slot and plant a column index behind it.
  bool planted = false;
  for (index_t r = 0; r < a.rows && !planted; ++r)
    for (index_t j = 0; j + 1 < a.width && !planted; ++j)
      if (a.col_at(r, j) == bs::kPad) {
        a.col_idx[static_cast<std::size_t>(j + 1) * a.rows + r] = 0;
        planted = true;
      }
  ASSERT_TRUE(planted) << "matrix has no interior padding slot";
  EXPECT_FALSE(ck::validate_ell(a).empty());
}

TEST(Validate, EllRCatchesWrongRowLength) {
  const bs::Csr csr = sample_matrix();
  bs::EllR a = bs::csr_to_ellr(csr);
  ASSERT_TRUE(ck::validate_ellr(a, &csr).empty());
  a.row_length[4] += 1;
  EXPECT_FALSE(ck::validate_ellr(a).empty());
}

TEST(Validate, HybCatchesOverflowIntoUnfilledRow) {
  const bs::Csr csr = sample_matrix();
  bs::Hyb a = bs::csr_to_hyb(csr);
  ASSERT_TRUE(ck::validate_hyb(a, &csr).empty());
  // Claim an overflow entry for a row whose ELL slots are not full.
  for (index_t r = 0; r < a.ell.rows; ++r) {
    if (a.ell.width > 0 && a.ell.col_at(r, a.ell.width - 1) == bs::kPad) {
      a.coo.push(r, 0, 1.0);
      a.coo.canonicalize();
      break;
    }
  }
  EXPECT_FALSE(ck::validate_hyb(a).empty());
}

TEST(Validate, ValueCorruptionCaughtAgainstReference) {
  const bs::Csr csr = sample_matrix();
  bs::Ell a = bs::csr_to_ell(csr);
  // Flip one stored value: structurally fine, numerically lossy.
  for (std::size_t i = 0; i < a.vals.size(); ++i)
    if (a.col_idx[i] != bs::kPad) {
      a.vals[i] += 1.0;
      break;
    }
  EXPECT_TRUE(ck::validate_ell(a).empty());
  EXPECT_FALSE(ck::validate_ell(a, &csr).empty());
}

// ---- lossless cross-checks: the BRO formats against a mismatched source ----

TEST(Validate, BroFormatsDetectMismatchedReference) {
  const bs::Csr good = sample_matrix(21);
  bs::Csr other = sample_matrix(21);
  other.vals[0] += 2.5; // same structure, different numbers

  const auto bro_ell = bc::BroEll::compress(bs::csr_to_ell(good));
  EXPECT_TRUE(ck::validate_bro_ell(bro_ell, &good).empty());
  EXPECT_FALSE(ck::validate_bro_ell(bro_ell, &other).empty());

  const auto bro_coo = bc::BroCoo::compress(bs::csr_to_coo(good));
  EXPECT_TRUE(ck::validate_bro_coo(bro_coo, &good).empty());
  const auto bro_csr = bc::BroCsr::compress(good);
  EXPECT_TRUE(ck::validate_bro_csr(bro_csr, &good).empty());
  EXPECT_FALSE(ck::validate_bro_csr(bro_csr, &other).empty());

  const auto bro_hyb = bc::BroHyb::compress(good);
  EXPECT_TRUE(ck::validate_bro_hyb(bro_hyb, &good).empty());
  EXPECT_FALSE(ck::validate_bro_hyb(bro_hyb, &other).empty());

  // A structurally different source must be flagged too.
  const bs::Csr shifted = sample_matrix(22);
  if (shifted.nnz() == good.nnz()) {
    EXPECT_FALSE(ck::validate_bro_ell(bro_ell, &shifted).empty());
  }
}

TEST(Validate, MessagesAreCappedOnMassCorruption) {
  bs::Csr a = sample_matrix();
  for (auto& c : a.col_idx) c = a.cols + 1; // every entry out of range
  const auto issues = ck::validate_csr(a);
  ASSERT_FALSE(issues.empty());
  EXPECT_LE(issues.size(), 20u); // capped, not one message per nnz
  EXPECT_NE(joined(issues).find("truncated"), std::string::npos);
}

// ---- the adversarial battery ----

TEST(Adversarial, SuiteCoversTheDegenerateShapes) {
  const auto suite = bs::adversarial_suite(1);
  std::set<std::string> names;
  for (const auto& c : suite) {
    EXPECT_TRUE(c.csr.is_valid()) << c.name;
    EXPECT_TRUE(names.insert(c.name).second) << "duplicate name " << c.name;
  }
  for (const char* required :
       {"0x0-empty", "0xN-no-rows", "Nx0-no-cols", "1xN-single-dense-row",
        "Nx1-full-column", "single-dense-row", "max-delta-last-column",
        "duplicate-heavy-precanonical-coo", "empty-row-after-slice-boundary"})
    EXPECT_TRUE(names.count(required)) << "missing case " << required;
}

TEST(Adversarial, SuiteIsDeterministicPerSeed) {
  const auto a = bs::adversarial_suite(5);
  const auto b = bs::adversarial_suite(5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].csr.vals, b[i].csr.vals);
  }
}

TEST(Adversarial, HugeCasesApproachTheIndexLimit) {
  const auto huge = bs::adversarial_huge_cases(1);
  ASSERT_FALSE(huge.empty());
  for (const auto& c : huge) {
    EXPECT_TRUE(c.csr.is_valid()) << c.name;
    EXPECT_GT(c.csr.cols, index_t{1} << 30) << c.name;
  }
}

// ---- the differential fuzz driver ----

TEST(Fuzz, BoundedRunPassesAndCountsWork) {
  ck::FuzzOptions opts;
  opts.rounds = 3;
  opts.seed = 2013;
  const auto report = ck::run_fuzz(opts, nullptr);
  EXPECT_TRUE(report.ok()) << report.failures.size() << " failures, first: "
                           << (report.failures.empty()
                                   ? std::string()
                                   : report.failures.front().message);
  // The adversarial battery alone is > 10 matrices.
  EXPECT_GT(report.matrices, 10);
  EXPECT_GT(report.comparisons, 0u);
  EXPECT_GT(report.validations, 0u);
}

TEST(Fuzz, IsDeterministicPerSeed) {
  ck::FuzzOptions opts;
  opts.rounds = 2;
  opts.seed = 99;
  opts.simulate = false; // keep the repeat run cheap
  const auto a = ck::run_fuzz(opts, nullptr);
  const auto b = ck::run_fuzz(opts, nullptr);
  EXPECT_EQ(a.matrices, b.matrices);
  EXPECT_EQ(a.comparisons, b.comparisons);
  EXPECT_EQ(a.validations, b.validations);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Fuzz, LogReportsEveryMatrix) {
  ck::FuzzOptions opts;
  opts.rounds = 1;
  opts.seed = 7;
  opts.simulate = false;
  std::ostringstream log;
  const auto report = ck::run_fuzz(opts, &log);
  EXPECT_TRUE(report.ok());
  EXPECT_NE(log.str().find("adversarial:0x0-empty"), std::string::npos);
  EXPECT_NE(log.str().find("round-0"), std::string::npos);
  EXPECT_NE(log.str().find("0 failures"), std::string::npos);
}
