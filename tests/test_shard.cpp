// engine/shard.h tests: row-partition invariants (coverage, nnz balance,
// S > rows clamping), extract_rows round-trips, and the bitwise contract —
// a ShardedSpmvPlan must reproduce the whole-matrix plan bit for bit for
// every row-shardable format across the adversarial matgen battery,
// including 1-row shards, nnz-empty shards, and the SpMM path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/shard.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bs = bro::sparse;
namespace bc = bro::core;
namespace be = bro::engine;
using bro::index_t;
using bro::value_t;

namespace {

std::shared_ptr<const bc::Matrix> matrix_from(bs::Csr csr) {
  return std::make_shared<const bc::Matrix>(
      bc::Matrix::from_csr(std::move(csr)));
}

std::shared_ptr<const bc::Matrix> gen_matrix(index_t rows, index_t cols,
                                             std::uint64_t seed,
                                             index_t min_len = 1) {
  bs::GenSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.mu = 8;
  spec.sigma = 4;
  spec.min_len = min_len;
  spec.seed = seed;
  return matrix_from(bs::generate(spec));
}

std::vector<value_t> random_x(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void check_partition(const bs::Csr& csr, const std::vector<be::RowShard>& sh,
                     int requested) {
  if (csr.rows == 0) {
    EXPECT_TRUE(sh.empty());
    return;
  }
  ASSERT_EQ(static_cast<index_t>(sh.size()),
            std::min<index_t>(requested, csr.rows));
  index_t next = 0;
  std::size_t nnz = 0;
  for (const auto& s : sh) {
    EXPECT_EQ(s.begin, next);          // contiguous, in order
    EXPECT_GT(s.end, s.begin);         // never an empty row range
    EXPECT_EQ(s.nnz, static_cast<std::size_t>(csr.row_ptr[s.end] -
                                              csr.row_ptr[s.begin]));
    next = s.end;
    nnz += s.nnz;
  }
  EXPECT_EQ(next, csr.rows); // full coverage
  EXPECT_EQ(nnz, csr.nnz());
}

} // namespace

TEST(RowShards, PartitionInvariants) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const auto m = gen_matrix(257, 180, seed, /*min_len=*/0);
    for (const int s : {1, 2, 4, 7, 256, 257, 1000}) {
      SCOPED_TRACE(testing::Message() << "seed " << seed << " shards " << s);
      check_partition(m->csr(), be::balanced_row_shards(m->csr(), s), s);
    }
  }
}

TEST(RowShards, BalancesNnzNotRows) {
  // One very dense row at the top, uniform tail: a row-count split would
  // put ~all work in shard 0; the nnz split must isolate the dense row.
  bs::GenSpec spec;
  spec.rows = 400;
  spec.cols = 600;
  spec.mu = 4;
  spec.sigma = 0;
  spec.seed = 31;
  spec.spike_rows = 1;
  spec.spike_len = 500;
  bs::Csr csr = bs::generate(spec);
  const auto shards = be::balanced_row_shards(csr, 4);
  check_partition(csr, shards, 4);
  const std::size_t share = csr.nnz() / 4;
  // Every shard but the last stops at (or just past) its nnz share; no
  // shard hoards more than a share plus one row's worth of entries.
  for (const auto& s : shards)
    EXPECT_LE(s.nnz, share + static_cast<std::size_t>(csr.max_row_length()));
}

TEST(RowShards, ShardCountMustBePositive) {
  const auto m = gen_matrix(10, 10, 41);
  EXPECT_THROW(be::balanced_row_shards(m->csr(), 0), std::runtime_error);
  EXPECT_THROW(be::balanced_row_shards(m->csr(), -3), std::runtime_error);
}

TEST(RowShards, ExtractRowsRebasesSlice) {
  const auto m = gen_matrix(50, 40, 42, /*min_len=*/0);
  const bs::Csr& csr = m->csr();
  const bs::Csr sub = be::extract_rows(csr, 10, 30);
  ASSERT_EQ(sub.rows, 20);
  EXPECT_EQ(sub.cols, csr.cols);
  EXPECT_TRUE(sub.is_valid());
  for (index_t r = 0; r < sub.rows; ++r) {
    ASSERT_EQ(sub.row_length(r), csr.row_length(10 + r));
    const auto want_c = csr.row_cols(10 + r);
    const auto got_c = sub.row_cols(r);
    const auto want_v = csr.row_vals(10 + r);
    const auto got_v = sub.row_vals(r);
    for (std::size_t i = 0; i < want_c.size(); ++i) {
      EXPECT_EQ(got_c[i], want_c[i]);
      EXPECT_EQ(got_v[i], want_v[i]);
    }
  }
  // Degenerate slices: empty range, full range.
  EXPECT_EQ(be::extract_rows(csr, 7, 7).rows, 0);
  EXPECT_EQ(be::extract_rows(csr, 0, csr.rows).nnz(), csr.nnz());
  EXPECT_THROW(be::extract_rows(csr, 30, 10), std::runtime_error);
  EXPECT_THROW(be::extract_rows(csr, 0, csr.rows + 1), std::runtime_error);
}

TEST(ShardedSpmvPlan, RejectsIntervalCarryFormats) {
  const auto m = gen_matrix(64, 64, 43);
  EXPECT_THROW(be::ShardedSpmvPlan(m, 4, bc::Format::kBroCoo),
               std::runtime_error);
  EXPECT_THROW(be::ShardedSpmvPlan(m, 4, bc::Format::kBroHyb),
               std::runtime_error);
}

TEST(ShardedSpmvPlan, AutoFormatFallsBackToShardable) {
  const auto m = gen_matrix(64, 64, 44);
  const bc::Format resolved =
      be::ShardedSpmvPlan::resolve_format(*m, std::nullopt);
  EXPECT_TRUE(be::traits(resolved).row_shardable);
  be::ShardedSpmvPlan plan(m, 4); // must not throw whatever auto picks
  EXPECT_EQ(plan.format(), resolved);
}

// The core contract: for every row-shardable format applicable to every
// adversarial-battery matrix, sharded execution is bitwise-identical to
// the whole-matrix plan — at gentle shard counts, 1-row shards
// (shards == rows) and over-asked counts (shards > rows).
TEST(ShardedSpmvPlan, BitwiseIdenticalOnAdversarialSuite) {
  for (auto& c : bs::adversarial_suite(2013)) {
    auto matrix = matrix_from(std::move(c.csr));
    const bs::Csr& a = matrix->csr();
    if (a.rows == 0) continue;
    const auto x = random_x(a.cols, 77);
    std::vector<value_t> y_plan(static_cast<std::size_t>(a.rows));
    std::vector<value_t> y_shard(y_plan.size());

    for (const auto& t : be::format_registry()) {
      if (!t.row_shardable || !t.applicable(a, 3.0)) continue;
      SCOPED_TRACE(testing::Message() << c.name << " / " << t.name);
      be::SpmvPlan plan(matrix, t.format);
      plan.execute(x, y_plan);
      for (const int s : {2, static_cast<int>(a.rows),
                          static_cast<int>(a.rows) + 5}) {
        SCOPED_TRACE(testing::Message() << "shards " << s);
        be::ShardedSpmvPlan sharded(matrix, s, t.format);
        sharded.execute(x, y_shard);
        for (std::size_t r = 0; r < y_plan.size(); ++r)
          ASSERT_EQ(y_shard[r], y_plan[r]) << "row " << r;
      }
    }
  }
}

TEST(ShardedSpmvPlan, EmptyShardsAreZeroFilled) {
  // Rows 20..59 are empty. Asking for one shard per row (the greedy
  // nnz-balanced cut otherwise folds empty rows into a neighbour) forces
  // 1-row shards over the empty tail: those must carry no plan at all and
  // still produce +0.0 rows.
  bs::Csr csr;
  csr.rows = 60;
  csr.cols = 30;
  csr.row_ptr.assign(static_cast<std::size_t>(csr.rows) + 1, 0);
  for (index_t r = 0; r < 20; ++r)
    csr.row_ptr[static_cast<std::size_t>(r) + 1] =
        csr.row_ptr[static_cast<std::size_t>(r)] + 1;
  for (index_t r = 20; r < csr.rows; ++r)
    csr.row_ptr[static_cast<std::size_t>(r) + 1] = csr.row_ptr[20];
  for (index_t r = 0; r < 20; ++r) {
    csr.col_idx.push_back(r % csr.cols);
    csr.vals.push_back(1.0 + r);
  }
  auto matrix = matrix_from(std::move(csr));

  be::ShardedSpmvPlan sharded(matrix, 60, bc::Format::kCsr);
  bool saw_empty = false;
  for (int s = 0; s < sharded.shard_count(); ++s)
    if (sharded.shard(s).nnz == 0) {
      saw_empty = true;
      EXPECT_EQ(sharded.shard_plan(s), nullptr);
    }
  EXPECT_TRUE(saw_empty);

  const auto x = random_x(matrix->cols(), 78);
  std::vector<value_t> y_plan(static_cast<std::size_t>(matrix->rows()));
  std::vector<value_t> y_shard(y_plan.size(), -1.0); // must be overwritten
  be::SpmvPlan plan(matrix, bc::Format::kCsr);
  plan.execute(x, y_plan);
  sharded.execute(x, y_shard);
  for (std::size_t r = 0; r < y_plan.size(); ++r)
    ASSERT_EQ(y_shard[r], y_plan[r]) << "row " << r;
}

TEST(ShardedSpmvPlan, SpmmBitwiseIdentical) {
  const auto m = gen_matrix(220, 200, 45, /*min_len=*/0);
  const int k = 3;
  const auto uk = static_cast<std::size_t>(k);
  const auto cols = static_cast<std::size_t>(m->cols());
  const auto rows = static_cast<std::size_t>(m->rows());
  std::vector<value_t> x(cols * uk);
  bro::Rng rng(79);
  for (auto& v : x) v = rng.uniform() * 2 - 1;

  for (const auto& t : be::format_registry()) {
    if (!t.row_shardable || !t.applicable(m->csr(), 3.0)) continue;
    SCOPED_TRACE(t.name);
    std::vector<value_t> y_plan(rows * uk), y_shard(rows * uk);
    be::SpmvPlan plan(m, t.format);
    plan.execute_multi(x, y_plan, k);
    be::ShardedSpmvPlan sharded(m, 5, t.format);
    sharded.execute_multi(x, y_shard, k);
    for (std::size_t i = 0; i < y_plan.size(); ++i)
      ASSERT_EQ(y_shard[i], y_plan[i]) << "index " << i;
  }
}

TEST(ShardedSpmvPlan, ExecuteShardWritesOnlyItsRows) {
  const auto m = gen_matrix(90, 80, 46);
  be::ShardedSpmvPlan sharded(m, 3, bc::Format::kCsr);
  be::SpmvPlan plan(m, bc::Format::kCsr);
  const auto x = random_x(m->cols(), 80);
  std::vector<value_t> y_plan(static_cast<std::size_t>(m->rows()));
  plan.execute(x, y_plan);

  ASSERT_EQ(sharded.shard_count(), 3);
  const be::RowShard& mid = sharded.shard(1);
  std::vector<value_t> y_mid(static_cast<std::size_t>(mid.rows()));
  sharded.execute_shard(1, x, y_mid);
  for (index_t r = 0; r < mid.rows(); ++r)
    ASSERT_EQ(y_mid[static_cast<std::size_t>(r)],
              y_plan[static_cast<std::size_t>(mid.begin + r)]);

  EXPECT_GT(sharded.resident_bytes(), 0u);
}
