// BRO-BCSR tests: exact block-cover reconstruction, shape selection under
// the fill-charged savings model, the bitwise-FP kernel contract across
// scalar/SSE4/AVX2 at every forced shape and symbol length, SpMM column
// equivalence, serialize round-trips, auto-selection hygiene, and the
// truss-FEM generator the format is benchmarked on.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "core/bro_bcsr.h"
#include "core/serialize.h"
#include "kernels/bro_bcsr_decode.h"
#include "sparse/convert.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bk = bro::kernels;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

/// Drop explicit zeros — the cover's fill-in — so a reconstruction can be
/// compared entry-for-entry with the (zero-free) source pattern.
bs::Csr strip_zeros(const bs::Csr& in) {
  bs::Csr out;
  out.rows = in.rows;
  out.cols = in.cols;
  out.row_ptr.push_back(0);
  for (index_t r = 0; r < in.rows; ++r) {
    for (index_t p = in.row_ptr[r]; p < in.row_ptr[r + 1]; ++p)
      if (in.vals[static_cast<std::size_t>(p)] != 0.0) {
        out.col_idx.push_back(in.col_idx[static_cast<std::size_t>(p)]);
        out.vals.push_back(in.vals[static_cast<std::size_t>(p)]);
      }
    out.row_ptr.push_back(static_cast<index_t>(out.col_idx.size()));
  }
  return out;
}

void expect_exact_reconstruction(const bs::Csr& src, const bc::BroBcsr& a) {
  const bs::Csr back = strip_zeros(a.to_csr());
  ASSERT_EQ(back.rows, src.rows);
  ASSERT_EQ(back.cols, src.cols);
  ASSERT_EQ(back.row_ptr, src.row_ptr);
  ASSERT_EQ(back.col_idx, src.col_idx);
  for (std::size_t i = 0; i < src.vals.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back.vals[i]),
              std::bit_cast<std::uint64_t>(src.vals[i]))
        << "value " << i;
}

void expect_bitwise_spmv(const bs::Csr& csr, const bc::BroBcsr& a,
                         bk::SimdIsa isa, const char* what) {
  const auto x = random_x(csr.cols, 0xb17b17);
  std::vector<value_t> ref(static_cast<std::size_t>(csr.rows));
  a.spmv(x, ref);
  const auto ks = bk::plan_bro_bcsr_kernels(a, isa);
  std::vector<value_t> y(ref.size(), 0.0);
  for (std::size_t si = 0; si < ks.size(); ++si) ks[si].spmv(a, si, x, y);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(y[i]),
              std::bit_cast<std::uint64_t>(ref[i]))
        << what << " " << bk::simd_isa_name(isa) << " row " << i;
}

} // namespace

TEST(BroBcsr, ExactCoverRoundTripsTruss) {
  const bs::Csr csr = bs::generate_truss2d(40, 6, 7);
  for (const int sym_len : {32, 64}) {
    bc::BroBcsrOptions opts;
    opts.sym_len = sym_len;
    const bc::BroBcsr a = bc::BroBcsr::compress(csr, opts);
    EXPECT_EQ(a.nnz(), csr.nnz());
    expect_exact_reconstruction(csr, a);
  }
}

TEST(BroBcsr, ExactCoverRoundTripsAdversarial) {
  for (const auto& c : bs::adversarial_suite())
    for (const auto& [br, bc_] : bc::kBcsrCandidateShapes) {
      bc::BroBcsrOptions opts;
      opts.block_rows = br;
      opts.block_cols = bc_;
      const bc::BroBcsr a = bc::BroBcsr::compress(c.csr, opts);
      const bs::Csr back = strip_zeros(a.to_csr());
      // Adversarial sources may themselves hold explicit zeros, so compare
      // against the equally stripped source.
      const bs::Csr src = strip_zeros(c.csr);
      ASSERT_EQ(back.row_ptr, src.row_ptr) << c.name << " " << br << "x"
                                           << bc_;
      ASSERT_EQ(back.col_idx, src.col_idx) << c.name;
    }
}

TEST(BroBcsr, TrussChoosesTwoByTwo) {
  // A jittered truss assembly is a union of fully dense 2x2 dof blocks;
  // the savings model must find that shape (and fully dense covers).
  const bs::Csr csr = bs::generate_truss2d(120, 6, 3);
  const bc::BroBcsr a = bc::BroBcsr::compress(csr);
  EXPECT_EQ(a.block_r(), 2);
  EXPECT_EQ(a.block_c(), 2);
  const auto analysis = bc::analyze_bro_bcsr(csr);
  ASSERT_GE(analysis.best, 0);
  EXPECT_DOUBLE_EQ(
      analysis.shapes[static_cast<std::size_t>(analysis.best)].fill, 1.0);
  EXPECT_TRUE(bc::bro_bcsr_applicable(csr, 3.0));
}

TEST(BroBcsr, ForcedShapesAreRespected) {
  const bs::Csr csr = bs::generate_truss2d(24, 4, 11);
  for (const auto& [br, bc_] : bc::kBcsrCandidateShapes) {
    bc::BroBcsrOptions opts;
    opts.block_rows = br;
    opts.block_cols = bc_;
    const bc::BroBcsr a = bc::BroBcsr::compress(csr, opts);
    EXPECT_EQ(a.block_r(), br);
    EXPECT_EQ(a.block_c(), bc_);
    expect_exact_reconstruction(csr, a);
  }
}

TEST(BroBcsr, KernelsMatchReferenceBitwiseEverywhere) {
  // The tentpole contract: every ISA's kernels reproduce the sequential
  // 8-lane reference exactly, for every adversarial case, forced shape and
  // symbol length this process can run.
  for (const auto& c : bs::adversarial_suite())
    for (const auto& [br, bc_] : bc::kBcsrCandidateShapes)
      for (const int sym_len : {32, 64}) {
        bc::BroBcsrOptions opts;
        opts.block_rows = br;
        opts.block_cols = bc_;
        opts.sym_len = sym_len;
        const bc::BroBcsr a = bc::BroBcsr::compress(c.csr, opts);
        for (const bk::SimdIsa isa :
             {bk::SimdIsa::kScalar, bk::SimdIsa::kSse4, bk::SimdIsa::kAvx2}) {
          if (isa != bk::SimdIsa::kScalar && !bk::simd_isa_runnable(isa))
            continue;
          expect_bitwise_spmv(c.csr, a, isa, c.name.c_str());
        }
      }
}

TEST(BroBcsr, SpmvMatchesCsrReferenceNumerically) {
  const bs::Csr csr = bs::generate_truss2d(60, 6, 21);
  const bc::BroBcsr a = bc::BroBcsr::compress(csr);
  const auto x = random_x(csr.cols, 5);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  a.spmv(x, y);
  for (index_t r = 0; r < csr.rows; ++r)
    EXPECT_NEAR(y[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)],
                1e-10 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])))
        << "row " << r;
}

TEST(BroBcsr, SpmmColumnsMatchSpmvBitwise) {
  const bs::Csr csr = bs::generate_truss2d(32, 5, 13);
  const bc::BroBcsr a = bc::BroBcsr::compress(csr);
  constexpr int k = 5;
  const auto n = static_cast<std::size_t>(csr.cols);
  const auto m = static_cast<std::size_t>(csr.rows);
  const auto flat = random_x(static_cast<index_t>(n * k), 17);
  std::vector<value_t> ym(m * k);
  bk::native_spmm_bro_bcsr(a, flat, ym, k);
  for (int j = 0; j < k; ++j) {
    std::vector<value_t> xj(n), yj(m);
    for (std::size_t c = 0; c < n; ++c)
      xj[c] = flat[c * k + static_cast<std::size_t>(j)];
    a.spmv(xj, yj);
    for (std::size_t r = 0; r < m; ++r)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(
                    ym[r * k + static_cast<std::size_t>(j)]),
                std::bit_cast<std::uint64_t>(yj[r]))
          << "column " << j << " row " << r;
  }
}

TEST(BroBcsr, SerializeRoundTripsBitwise) {
  const bs::Csr csr = bs::generate_truss2d(28, 4, 29);
  for (const int sym_len : {32, 64}) {
    bc::BroBcsrOptions opts;
    opts.sym_len = sym_len;
    const bc::BroBcsr a = bc::BroBcsr::compress(csr, opts);
    std::stringstream buf;
    bc::write_bro_bcsr(buf, a);
    EXPECT_EQ(bc::peek_bro_format(buf), bc::Format::kBroBcsr);
    buf.seekg(0);
    const bc::BroBcsr b = bc::read_bro_bcsr(buf);
    EXPECT_EQ(b.rows(), a.rows());
    EXPECT_EQ(b.block_r(), a.block_r());
    EXPECT_EQ(b.block_c(), a.block_c());
    EXPECT_EQ(b.nnz(), a.nnz());
    const auto x = random_x(csr.cols, 31);
    std::vector<value_t> ya(static_cast<std::size_t>(csr.rows));
    std::vector<value_t> yb(static_cast<std::size_t>(csr.rows));
    a.spmv(x, ya);
    b.spmv(x, yb);
    for (std::size_t i = 0; i < ya.size(); ++i)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(ya[i]),
                std::bit_cast<std::uint64_t>(yb[i]));
  }
}

TEST(BroBcsr, ApplicabilityRejectsRunsAcceptsBlocks) {
  // A pure diagonal is all fill; a dense-block adversarial pattern is the
  // format's home turf. At least one adversarial case must pass the gate
  // (the acceptance criterion the block-bench gate also enforces).
  bs::Coo diag;
  diag.rows = 512;
  diag.cols = 512;
  for (index_t i = 0; i < 512; ++i) diag.push(i, i, 1.0);
  diag.canonicalize();
  EXPECT_FALSE(bc::bro_bcsr_applicable(bs::coo_to_csr(diag), 3.0));

  int applicable = 0;
  for (const auto& c : bs::adversarial_suite())
    if (bc::bro_bcsr_applicable(c.csr, 3.0)) ++applicable;
  EXPECT_GE(applicable, 1);
}

TEST(BroBcsr, TrussGeneratorShape) {
  const index_t panels = 50, stories = 6;
  const bs::Csr csr = bs::generate_truss2d(panels, stories, 1);
  // 2 dofs per node, (panels + 1) * stories nodes.
  EXPECT_EQ(csr.rows, 2 * (panels + 1) * stories);
  EXPECT_EQ(csr.cols, csr.rows);
  EXPECT_GT(csr.nnz(), 0u);
  // Stiffness assembly: structurally symmetric, diagonal present, and the
  // jittered geometry stores no exact zeros.
  for (const auto v : csr.vals) EXPECT_NE(v, 0.0);
  std::set<std::pair<index_t, index_t>> entries;
  for (index_t r = 0; r < csr.rows; ++r)
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      entries.emplace(r, csr.col_idx[static_cast<std::size_t>(p)]);
  for (const auto& [r, c] : entries)
    EXPECT_TRUE(entries.count({c, r})) << "(" << r << ", " << c << ")";
  for (index_t r = 0; r < csr.rows; ++r) {
    bool diag = false;
    for (index_t p = csr.row_ptr[r]; p < csr.row_ptr[r + 1]; ++p)
      if (csr.col_idx[static_cast<std::size_t>(p)] == r) diag = true;
    EXPECT_TRUE(diag) << "row " << r;
  }
}

TEST(BroBcsr, SliceHeightBoundaries) {
  // Block rows straddling the slice boundary must decode identically for
  // any slice height, including 1 (every block row its own slice).
  const bs::Csr csr = bs::generate_truss2d(20, 4, 41);
  const bc::BroBcsr ref = bc::BroBcsr::compress(csr);
  const auto x = random_x(csr.cols, 43);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  ref.spmv(x, y_ref);
  for (const int h : {1, 3, 64, 1024}) {
    bc::BroBcsrOptions opts;
    opts.slice_height = h;
    const bc::BroBcsr a = bc::BroBcsr::compress(csr, opts);
    std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
    a.spmv(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_EQ(std::bit_cast<std::uint64_t>(y[i]),
                std::bit_cast<std::uint64_t>(y_ref[i]))
          << "slice_height " << h << " row " << i;
    expect_exact_reconstruction(csr, a);
  }
}

TEST(BroBcsr, SuiteTestSetThreeIsBcsrTerritory) {
  // Every truss suite entry must pass applicability at benchmark scales —
  // the precondition for the block-bench A/B being meaningful.
  for (const auto& e : bs::suite_test_set(3)) {
    const bs::Csr csr = bs::generate_suite_matrix(e, 0.0625);
    EXPECT_TRUE(bc::bro_bcsr_applicable(csr, 3.0)) << e.name;
  }
}
