// Parallel-correctness tests: force several OpenMP threads (the host here
// may have one core; logical races don't care) and verify the native
// kernels' partitioning and carry logic, plus simulator determinism.
#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include <vector>

#include "kernels/native_spmv.h"
#include "kernels/sim_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bc = bro::core;
namespace bs = bro::sparse;
namespace gs = bro::sim;
using bro::index_t;
using bro::value_t;

namespace {

struct ThreadGuard {
  ThreadGuard(int n) {
#ifdef _OPENMP
    prev = omp_get_max_threads();
    omp_set_num_threads(n);
#else
    (void)n;
    prev = 1;
#endif
  }
  ~ThreadGuard() {
#ifdef _OPENMP
    omp_set_num_threads(prev);
#endif
  }
  int prev;
};

std::vector<value_t> random_x(index_t n) {
  bro::Rng rng(67);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

} // namespace

class ParallelKernels : public ::testing::TestWithParam<int> {};

TEST_P(ParallelKernels, AllNativeKernelsAgree) {
  ThreadGuard guard(GetParam());

  bs::GenSpec spec;
  spec.rows = 2500;
  spec.cols = 2500;
  spec.mu = 13;
  spec.sigma = 6;
  spec.run = 2;
  spec.seed = 51;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  std::vector<value_t> y(y_ref.size());
  const auto check = [&](const char* what) {
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << what << " threads=" << GetParam() << " row " << r;
  };

  bk::native_spmv_csr(csr, x, y);
  check("csr");
  bk::native_spmv_coo(bs::csr_to_coo(csr), x, y);
  check("coo");
  bk::native_spmv_ell(bs::csr_to_ell(csr), x, y);
  check("ell");
  bk::native_spmv_bro_ell(bc::BroEll::compress(bs::csr_to_ell(csr)), x, y);
  check("bro_ell");
  bk::native_spmv_bro_coo(bc::BroCoo::compress(bs::csr_to_coo(csr)), x, y);
  check("bro_coo");
  bk::native_spmv_bro_hyb(bc::BroHyb::compress(csr), x, y);
  check("bro_hyb");
}

TEST_P(ParallelKernels, BroCooCarryUnderThreads) {
  ThreadGuard guard(GetParam());
  // Many intervals all contributing to few rows: worst case for carries.
  bs::Coo coo;
  coo.rows = 6;
  coo.cols = 20000;
  for (index_t c = 0; c < 20000; ++c) coo.push(c % 3, c, 1.0);
  coo.canonicalize();
  const bs::Csr csr = bs::coo_to_csr(coo);
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(6), y(6);
  bs::spmv_csr_reference(csr, x, y_ref);
  bk::native_spmv_bro_coo(bc::BroCoo::compress(bs::csr_to_coo(csr)), x, y);
  for (int r = 0; r < 6; ++r)
    ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelKernels,
                         ::testing::Values(1, 2, 4, 8));

TEST(SimDeterminism, IdenticalRunsIdenticalStats) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  const auto x = random_x(csr.cols);
  const auto bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  const auto a = bk::sim_spmv_bro_ell(gs::gtx680(), bro, x);
  const auto b = bk::sim_spmv_bro_ell(gs::gtx680(), bro, x);
  EXPECT_EQ(a.stats.dram_bytes(), b.stats.dram_bytes());
  EXPECT_EQ(a.stats.mem_transactions, b.stats.mem_transactions);
  EXPECT_DOUBLE_EQ(a.time.seconds, b.time.seconds);
  EXPECT_EQ(a.y, b.y);
}
