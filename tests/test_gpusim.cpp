// Tests for the analytic GPU simulator: device presets, LRU cache,
// coalescing, texture path and the roofline time estimate.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/device.h"
#include "gpusim/lru_cache.h"
#include "gpusim/sim.h"

namespace gs = bro::sim;

TEST(Device, Table1Presets) {
  const auto& devs = gs::all_devices();
  ASSERT_EQ(devs.size(), 3u);
  EXPECT_EQ(devs[0].name, "Tesla C2070");
  EXPECT_EQ(devs[0].sm_count * devs[0].cores_per_sm, 448);
  EXPECT_EQ(devs[1].sm_count * devs[1].cores_per_sm, 1536);
  EXPECT_EQ(devs[2].sm_count * devs[2].cores_per_sm, 2496);
  EXPECT_DOUBLE_EQ(devs[0].peak_bw_gbps, 144.0);
  EXPECT_DOUBLE_EQ(devs[1].peak_bw_gbps, 192.3);
  EXPECT_DOUBLE_EQ(devs[2].peak_bw_gbps, 208.0);
  EXPECT_DOUBLE_EQ(devs[2].dp_gflops, 1170.0);
}

TEST(Device, DpFmaRateConsistent) {
  const auto k20 = gs::tesla_k20();
  // dp_gflops = 2 * fma_rate * clock * sm_count must hold by construction.
  EXPECT_NEAR(k20.dp_fma_per_cycle_sm() * 2 * k20.clock_ghz * k20.sm_count,
              k20.dp_gflops, 1e-9);
}

TEST(LruCache, HitsAndEvictions) {
  gs::LruCache c(4 * 128, 128); // 4 lines
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(128));
  EXPECT_FALSE(c.access(256));
  EXPECT_FALSE(c.access(384));
  EXPECT_TRUE(c.access(0));   // hit, now MRU
  EXPECT_FALSE(c.access(512)); // evicts line 128 (LRU)
  EXPECT_FALSE(c.access(128)); // miss proves eviction
  EXPECT_TRUE(c.access(0));    // survived both fills
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 6u);
}

TEST(LruCache, SameLineDifferentOffsets) {
  gs::LruCache c(1024, 128);
  EXPECT_FALSE(c.access(5));
  EXPECT_TRUE(c.access(100)); // same 128B line
  EXPECT_FALSE(c.access(130)); // next line
}

TEST(LruCache, ZeroCapacityAlwaysMisses) {
  gs::LruCache c(0, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(0));
  EXPECT_EQ(c.hits(), 0u);
}

namespace {

std::vector<std::uint64_t> warp_addrs(const gs::VirtualArray& arr,
                                      std::uint64_t start, int stride = 1) {
  std::vector<std::uint64_t> a(32);
  for (int i = 0; i < 32; ++i)
    a[static_cast<std::size_t>(i)] =
        arr.addr(start + static_cast<std::uint64_t>(i) * stride);
  return a;
}

} // namespace

TEST(Sim, CoalescedLoadIsOneLinePerWarpQuantum) {
  gs::SimContext sim(gs::tesla_c2070(), {1, 256});
  auto arr = sim.alloc(1 << 16, 4);
  auto blk = sim.begin_block(0);
  // 32 consecutive 4-byte loads = 128 bytes = exactly one line.
  blk.load_global(warp_addrs(arr, 0), 4);
  EXPECT_EQ(sim.stats().mem_transactions, 1u);
  EXPECT_EQ(sim.stats().dram_read_bytes, 128u);
  // Repeat hits in L2: no extra DRAM traffic.
  blk.load_global(warp_addrs(arr, 0), 4);
  EXPECT_EQ(sim.stats().dram_read_bytes, 128u);
  EXPECT_EQ(sim.stats().l2_hits, 1u);
}

TEST(Sim, StridedLoadExplodesTransactions) {
  gs::SimContext sim(gs::tesla_c2070(), {1, 256});
  auto arr = sim.alloc(1 << 20, 4);
  auto blk = sim.begin_block(0);
  // Stride of 32 elements = 128 bytes: every lane touches its own line.
  blk.load_global(warp_addrs(arr, 0, 32), 4);
  EXPECT_EQ(sim.stats().mem_transactions, 32u);
  EXPECT_EQ(sim.stats().dram_read_bytes, 32u * 128u);
}

TEST(Sim, InactiveLanesIgnored) {
  gs::SimContext sim(gs::tesla_c2070(), {1, 256});
  auto arr = sim.alloc(1 << 16, 8);
  auto addrs = warp_addrs(arr, 0);
  for (int i = 8; i < 32; ++i) addrs[static_cast<std::size_t>(i)] = gs::kInactive;
  auto blk = sim.begin_block(0);
  blk.load_global(addrs, 8);
  // 8 lanes x 8B = 64B -> still one 128B line.
  EXPECT_EQ(sim.stats().mem_transactions, 1u);
}

TEST(Sim, TextureCacheCapturesReuse) {
  gs::SimContext sim(gs::tesla_k20(), {1, 256});
  auto x = sim.alloc(1 << 16, 8);
  auto blk = sim.begin_block(0);
  blk.load_texture(warp_addrs(x, 0), 8);
  const auto miss_bytes = sim.stats().dram_read_bytes;
  EXPECT_GT(miss_bytes, 0u);
  blk.load_texture(warp_addrs(x, 0), 8);
  EXPECT_EQ(sim.stats().dram_read_bytes, miss_bytes); // served from tex$
  EXPECT_GT(sim.stats().tex_hits, 0u);
}

TEST(Sim, DistinctAllocationsDoNotAlias) {
  gs::SimContext sim(gs::tesla_c2070(), {1, 256});
  auto a = sim.alloc(16, 4);
  auto b = sim.alloc(16, 4);
  auto blk = sim.begin_block(0);
  blk.load_global(warp_addrs(a, 0), 4);
  blk.load_global(warp_addrs(b, 0), 4);
  // Two separate lines: no false L2 hit between arrays.
  EXPECT_EQ(sim.stats().l2_hits, 0u);
  EXPECT_EQ(sim.stats().mem_transactions, 2u);
}

TEST(Sim, EstimateMemoryBoundKernel) {
  gs::SimContext sim(gs::tesla_k20(), {4096, 256});
  auto arr = sim.alloc(1 << 24, 8);
  // Stream 64 MiB with almost no compute.
  for (std::uint64_t b = 0; b < 4096; ++b) {
    auto blk = sim.begin_block(b);
    for (int w = 0; w < 8; ++w) {
      const std::uint64_t base = (b * 8 + static_cast<std::uint64_t>(w)) * 32;
      blk.load_global(warp_addrs(arr, base % (1 << 24)), 8);
    }
    blk.add_dp_fma(256);
  }
  const auto t = sim.estimate(2.0 * 4096 * 256);
  EXPECT_TRUE(t.memory_bound);
  EXPECT_GT(t.seconds, 0.0);
  // Effective bandwidth is capped by the measured (not peak) bandwidth.
  EXPECT_LE(t.effective_bw_gbps, gs::tesla_k20().measured_bw_gbps + 1e-9);
}

TEST(Sim, EstimateComputeBoundKernel) {
  gs::SimContext sim(gs::tesla_c2070(), {64, 256});
  for (std::uint64_t b = 0; b < 64; ++b) {
    auto blk = sim.begin_block(b);
    blk.add_dp_fma(10'000'000); // heavy FP, no memory
  }
  const auto t = sim.estimate(2.0 * 64 * 10'000'000);
  EXPECT_FALSE(t.memory_bound);
  // GFlop/s cannot exceed the device peak.
  EXPECT_LE(t.gflops, gs::tesla_c2070().dp_gflops * 1.001);
  EXPECT_GT(t.gflops, gs::tesla_c2070().dp_gflops * 0.5);
}

TEST(Sim, LittlesLawLimitsSmallLaunches) {
  const auto k20 = gs::tesla_k20();
  gs::SimContext tiny(k20, {2, 256});
  gs::SimContext big(k20, {4096, 256});
  EXPECT_LT(tiny.littles_law_bw_gbps(), big.littles_law_bw_gbps());
  EXPECT_LT(tiny.littles_law_bw_gbps(), k20.measured_bw_gbps);
}

TEST(Sim, LaunchOverheadFloor) {
  gs::SimContext sim(gs::tesla_c2070(), {1, 256});
  const auto t = sim.estimate(0.0);
  EXPECT_GE(t.seconds, gs::tesla_c2070().kernel_launch_us * 1e-6);
}

TEST(Sim, ResidentBlockConcurrencyScalesCaches) {
  const auto dev = gs::tesla_k20();
  // One block: full caches. Huge grid: per-block share shrinks, so a
  // working set that fits the full L2 starts missing.
  gs::SimContext small(dev, {1, 256});
  gs::SimContext big(dev, {100000, 256});
  EXPECT_EQ(small.resident_blocks(), 1u);
  EXPECT_GT(big.resident_blocks(), 50u);

  const auto touch = [](gs::SimContext& sim, int lines) {
    auto arr = sim.alloc(1 << 22, 8);
    auto blk = sim.begin_block(0);
    std::vector<std::uint64_t> addrs(32);
    for (int rep = 0; rep < 2; ++rep)
      for (int i = 0; i < lines; ++i) {
        for (int l = 0; l < 32; ++l)
          addrs[static_cast<std::size_t>(l)] =
              arr.addr(static_cast<std::uint64_t>(i) * 16 + static_cast<std::uint64_t>(l) / 2);
        blk.load_global(addrs, 8);
      }
    return sim.stats().l2_hits;
  };
  // 2000 lines x 128B = 256 KiB: fits the whole 1.25 MB L2 but not a
  // 1/208th share of it.
  EXPECT_GT(touch(small, 2000), touch(big, 2000));
}

TEST(Sim, ResidentBlocksBoundedByWarpSlots) {
  const auto dev = gs::tesla_c2070(); // 48 warps/SM, 8 blocks/SM
  // 512-thread blocks = 16 warps: only 3 fit per SM by warp count.
  gs::SimContext sim(dev, {1000, 512});
  EXPECT_EQ(sim.resident_blocks(),
            static_cast<std::uint64_t>(dev.sm_count) * 3u);
}
