// Tests for sparse containers and conversions, built around the paper's
// running example matrix A (Section 2).
#include <gtest/gtest.h>

#include <vector>

#include "sparse/convert.h"
#include "sparse/stats.h"
#include "util/rng.h"

namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

// The 4x5 example matrix from Section 2 of the paper:
//   3 0 2 0 0
//   2 6 5 4 1
//   0 1 9 0 7
//   0 0 0 8 3
bs::Coo paper_matrix() {
  bs::Coo coo;
  coo.rows = 4;
  coo.cols = 5;
  const index_t r[] = {0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3};
  const index_t c[] = {0, 2, 0, 1, 2, 3, 4, 1, 2, 4, 3, 4};
  const value_t v[] = {3, 2, 2, 6, 5, 4, 1, 1, 9, 7, 8, 3};
  for (int i = 0; i < 12; ++i) coo.push(r[i], c[i], v[i]);
  return coo;
}

bs::Csr random_csr(index_t rows, index_t cols, double fill, std::uint64_t seed) {
  bro::Rng rng(seed);
  bs::Coo coo;
  coo.rows = rows;
  coo.cols = cols;
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c)
      if (rng.uniform() < fill) coo.push(r, c, rng.uniform() * 2 - 1);
  return bs::coo_to_csr(coo);
}

} // namespace

TEST(Coo, PaperExampleIsCanonical) {
  const bs::Coo coo = paper_matrix();
  EXPECT_TRUE(coo.is_valid());
  EXPECT_TRUE(coo.is_canonical());
  EXPECT_EQ(coo.nnz(), 12u);
}

TEST(Coo, CanonicalizeSortsAndMergesDuplicates) {
  bs::Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(1, 1, 5);
  coo.push(0, 0, 1);
  coo.push(1, 1, 7);
  coo.canonicalize();
  EXPECT_TRUE(coo.is_canonical());
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.vals[1], 12);
}

TEST(Coo, CanonicalizeDropZeros) {
  bs::Coo coo;
  coo.rows = 1;
  coo.cols = 2;
  coo.push(0, 0, 5);
  coo.push(0, 0, -5);
  coo.push(0, 1, 1);
  coo.canonicalize(/*drop_zeros=*/true);
  EXPECT_EQ(coo.nnz(), 1u);
  EXPECT_EQ(coo.col_idx[0], 1);
}

TEST(Coo, InvalidIndexDetected) {
  bs::Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(2, 0, 1.0);
  EXPECT_FALSE(coo.is_valid());
}

TEST(Csr, RoundTripThroughCoo) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  EXPECT_TRUE(csr.is_valid());
  EXPECT_EQ(csr.nnz(), 12u);
  EXPECT_EQ(csr.max_row_length(), 5);
  const bs::Coo back = bs::csr_to_coo(csr);
  const bs::Coo orig = paper_matrix();
  EXPECT_EQ(back.row_idx, orig.row_idx);
  EXPECT_EQ(back.col_idx, orig.col_idx);
  EXPECT_EQ(back.vals, orig.vals);
}

TEST(Csr, ReferenceSpmvOnPaperMatrix) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  const std::vector<value_t> x = {1, 2, 3, 4, 5};
  std::vector<value_t> y(4);
  bs::spmv_csr_reference(csr, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3 * 1 + 2 * 3);
  EXPECT_DOUBLE_EQ(y[1], 2 * 1 + 6 * 2 + 5 * 3 + 4 * 4 + 1 * 5);
  EXPECT_DOUBLE_EQ(y[2], 1 * 2 + 9 * 3 + 7 * 5);
  EXPECT_DOUBLE_EQ(y[3], 8 * 4 + 3 * 5);
}

TEST(Ell, MatchesPaperLayout) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  const bs::Ell ell = bs::csr_to_ell(csr);
  EXPECT_TRUE(ell.is_valid());
  EXPECT_EQ(ell.width, 5);
  // Row 0: cols {0, 2}, padded to width 5.
  EXPECT_EQ(ell.col_at(0, 0), 0);
  EXPECT_EQ(ell.col_at(0, 1), 2);
  EXPECT_EQ(ell.col_at(0, 2), bs::kPad);
  EXPECT_DOUBLE_EQ(ell.val_at(0, 1), 2.0);
  // Column-major invariant: entry (r=1, j=0) is adjacent to (r=0, j=0).
  EXPECT_EQ(ell.col_idx[1], 0);
}

TEST(Ell, RoundTripToCsr) {
  const bs::Csr csr = random_csr(50, 40, 0.1, 7);
  const bs::Csr back = bs::ell_to_csr(bs::csr_to_ell(csr));
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_EQ(back.vals, csr.vals);
}

TEST(Ell, ExpansionGuard) {
  bs::Coo coo;
  coo.rows = 1000;
  coo.cols = 1000;
  for (index_t c = 0; c < 1000; ++c) coo.push(0, c, 1.0); // one dense row
  coo.push(5, 5, 1.0);
  const bs::Csr csr = bs::coo_to_csr(coo);
  EXPECT_THROW(bs::csr_to_ell(csr, /*max_expand=*/10.0), std::runtime_error);
}

TEST(EllR, RowLengthsRecorded) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  const bs::EllR ellr = bs::csr_to_ellr(csr);
  EXPECT_TRUE(ellr.is_valid());
  EXPECT_EQ(ellr.row_length, (std::vector<index_t>{2, 5, 3, 2}));
}

TEST(Hyb, SplitHeuristicPaperExample) {
  // Row lengths of the paper matrix: {2, 5, 3, 2}; threshold = max(1, 4/3)=1.
  // Largest k with >= 1 rows of length >= k is 5... but the paper's
  // illustration picks k = 3. The heuristic is data-dependent; verify the
  // rule itself on a sharper distribution.
  std::vector<index_t> lens(90, 4);
  lens.resize(120, 64); // 30 of 120 rows (exactly 1/4 < 1/3) are long
  const index_t k = bs::hyb_split_width(lens);
  EXPECT_EQ(k, 4); // 40 rows >= 4 never happens: 120 rows >= 4 -> k >= 4
}

TEST(Hyb, SplitWidthRules) {
  // 2/3 of rows have length 3, 1/3 have length 10 -> k = 10 needs exactly
  // rows/3 rows, which meets the "at least" threshold.
  std::vector<index_t> lens;
  lens.insert(lens.end(), 20, 3);
  lens.insert(lens.end(), 10, 10);
  EXPECT_EQ(bs::hyb_split_width(lens), 10);
  // Make the long rows fewer than a third -> k falls back to 3.
  lens.assign(21, 3);
  lens.insert(lens.end(), 9, 10);
  EXPECT_EQ(bs::hyb_split_width(lens), 3);
}

TEST(Hyb, RoundTripAndFraction) {
  const bs::Csr csr = random_csr(60, 60, 0.08, 11);
  const bs::Hyb hyb = bs::csr_to_hyb(csr);
  EXPECT_EQ(hyb.nnz(), csr.nnz());
  const bs::Csr back = bs::hyb_to_csr(hyb);
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_EQ(back.vals, csr.vals);
  EXPECT_GE(hyb.ell_fraction(), 0.0);
  EXPECT_LE(hyb.ell_fraction(), 1.0);
}

TEST(Hyb, ForcedWidthZeroPutsEverythingInCoo) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  const bs::Hyb hyb = bs::csr_to_hyb(csr, 0);
  EXPECT_EQ(hyb.coo.nnz(), csr.nnz());
  EXPECT_DOUBLE_EQ(hyb.ell_fraction(), 0.0);
}

TEST(Stats, PaperMatrix) {
  const bs::Csr csr = bs::coo_to_csr(paper_matrix());
  const bs::MatrixStats s = bs::compute_stats(csr);
  EXPECT_EQ(s.nnz, 12u);
  EXPECT_DOUBLE_EQ(s.mean_row_length, 3.0);
  EXPECT_EQ(s.max_row_length, 5);
  EXPECT_EQ(s.min_row_length, 2);
  EXPECT_NEAR(s.stddev_row_length, 1.224744871, 1e-6);
}

TEST(Stats, DimsString) {
  EXPECT_EQ(bs::dims_string(130228, 130228), "130k x 130k");
  EXPECT_EQ(bs::dims_string(1000005, 4284), "1M x 4k");
  EXPECT_EQ(bs::dims_string(500, 500), "500 x 500");
}

TEST(Convert, EmptyMatrix) {
  bs::Coo coo;
  coo.rows = 3;
  coo.cols = 3;
  const bs::Csr csr = bs::coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 0u);
  const bs::Ell ell = bs::csr_to_ell(csr);
  EXPECT_EQ(ell.width, 0);
  EXPECT_TRUE(ell.is_valid());
  const bs::Hyb hyb = bs::csr_to_hyb(csr);
  EXPECT_EQ(hyb.nnz(), 0u);
}
