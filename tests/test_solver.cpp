// Iterative-solver tests: CG / BiCGSTAB / GMRES on SPD and nonsymmetric
// systems, through both the CSR reference operator and the BRO formats.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/matrix.h"
#include "engine/plan.h"
#include "solver/bicgstab.h"
#include "solver/cg.h"
#include "solver/gmres.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
namespace sv = bro::solver;
using bro::index_t;
using bro::value_t;

namespace {

sv::Operator csr_operator(const bs::Csr& csr) {
  return [&csr](std::span<const value_t> x, std::span<value_t> y) {
    bs::spmv_csr_reference(csr, x, y);
  };
}

std::vector<value_t> make_rhs(const bs::Csr& csr,
                              const std::vector<value_t>& x_true) {
  std::vector<value_t> b(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x_true, b);
  return b;
}

std::vector<value_t> ones(std::size_t n) { return std::vector<value_t>(n, 1.0); }

void expect_solution(const std::vector<value_t>& x,
                     const std::vector<value_t>& x_true, double tol) {
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(x[i], x_true[i], tol) << "component " << i;
}

} // namespace

TEST(SolverCg, PoissonConverges) {
  const bs::Csr a = bs::generate_poisson2d(24, 24);
  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  const auto res = sv::cg(csr_operator(a), b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.residual_norm, 1e-9);
  expect_solution(x, x_true, 1e-6);
}

TEST(SolverCg, JacobiPreconditionerReducesIterations) {
  bs::GenSpec spec;
  spec.rows = 800;
  spec.cols = 800;
  spec.mu = 6;
  spec.sigma = 2;
  spec.seed = 33;
  bs::Csr a = bs::generate(spec);
  bs::make_diag_dominant(a, 5.0);
  // Symmetrize: A := (A + A^T)/2 through COO.
  bs::Coo coo = bs::csr_to_coo(a);
  const std::size_t n0 = coo.nnz();
  for (std::size_t i = 0; i < n0; ++i)
    coo.push(coo.col_idx[i], coo.row_idx[i], coo.vals[i]);
  for (auto& v : coo.vals) v *= 0.5;
  coo.canonicalize();
  a = bs::coo_to_csr(coo);
  bs::make_diag_dominant(a, 5.0);

  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);

  std::vector<value_t> x0(b.size(), 0.0), x1(b.size(), 0.0);
  const auto plain = sv::cg(csr_operator(a), b, x0);
  const sv::JacobiPreconditioner jacobi(a);
  const auto pre = sv::cg(csr_operator(a), b, x1, {}, jacobi.as_preconditioner());
  EXPECT_TRUE(plain.converged);
  EXPECT_TRUE(pre.converged);
  EXPECT_LE(pre.iterations, plain.iterations);
}

TEST(SolverCg, ZeroRhsReturnsImmediately) {
  const bs::Csr a = bs::generate_poisson2d(8, 8);
  std::vector<value_t> b(static_cast<std::size_t>(a.rows), 0.0);
  std::vector<value_t> x(b.size(), 0.0);
  const auto res = sv::cg(csr_operator(a), b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
}

TEST(SolverBicgstab, NonsymmetricConverges) {
  bs::GenSpec spec;
  spec.rows = 600;
  spec.cols = 600;
  spec.mu = 7;
  spec.sigma = 2;
  spec.seed = 44;
  bs::Csr a = bs::generate(spec);
  bs::make_diag_dominant(a, 2.0);
  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  const auto res = sv::bicgstab(csr_operator(a), b, x);
  EXPECT_TRUE(res.converged);
  expect_solution(x, x_true, 1e-6);
}

TEST(SolverGmres, NonsymmetricConverges) {
  bs::GenSpec spec;
  spec.rows = 500;
  spec.cols = 500;
  spec.mu = 6;
  spec.sigma = 3;
  spec.seed = 45;
  bs::Csr a = bs::generate(spec);
  bs::make_diag_dominant(a, 2.0);
  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  sv::SolveOptions opts;
  opts.restart = 25;
  opts.max_iterations = 2000;
  const auto res = sv::gmres(csr_operator(a), b, x, opts);
  EXPECT_TRUE(res.converged) << "residual " << res.residual_norm;
  expect_solution(x, x_true, 1e-6);
}

TEST(SolverGmres, RestartSmallerThanProblemStillConverges) {
  const bs::Csr a = bs::generate_poisson2d(12, 12);
  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  sv::SolveOptions opts;
  opts.restart = 5;
  opts.max_iterations = 5000;
  const auto res = sv::gmres(csr_operator(a), b, x, opts);
  EXPECT_TRUE(res.converged);
}

TEST(SolverCg, WorksThroughBroEllOperator) {
  // The paper's use case: the SpMV inside CG served by the compressed format.
  const bs::Csr a = bs::generate_poisson2d(20, 20);
  const auto m = std::make_shared<bc::Matrix>(bc::Matrix::from_csr(a));
  ASSERT_EQ(m->auto_format(), bc::Format::kBroEll);
  const auto plan = std::make_shared<bro::engine::SpmvPlan>(m);
  ASSERT_EQ(plan->format(), bc::Format::kBroEll);
  const sv::Operator op = bro::engine::plan_operator(plan);
  const auto x_true = ones(static_cast<std::size_t>(a.rows));
  const auto b = make_rhs(a, x_true);
  std::vector<value_t> x(b.size(), 0.0);
  const auto res = sv::cg(op, b, x);
  EXPECT_TRUE(res.converged);
  expect_solution(x, x_true, 1e-6);
}

TEST(SolverCg, NonConvergenceReported) {
  // An indefinite system: CG must not claim convergence within few iters.
  bs::Coo coo;
  coo.rows = 4;
  coo.cols = 4;
  coo.push(0, 0, 1.0);
  coo.push(1, 1, -1.0);
  coo.push(2, 2, 1.0);
  coo.push(3, 3, -1.0);
  const bs::Csr a = bs::coo_to_csr(coo);
  std::vector<value_t> b = {1, 1, 1, 1};
  std::vector<value_t> x(4, 0.0);
  sv::SolveOptions opts;
  opts.max_iterations = 1; // starve it
  opts.tolerance = 1e-30;
  const auto res = sv::cg(csr_operator(a), b, x, opts);
  EXPECT_FALSE(res.converged);
}
