// Matrix Market reader/writer tests, including failure injection on
// malformed inputs.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/convert.h"
#include "sparse/mmio.h"

namespace bs = bro::sparse;

TEST(Mmio, ReadGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 3\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 4 7\n");
  const bs::Coo coo = bs::read_matrix_market(in);
  EXPECT_EQ(coo.rows, 3);
  EXPECT_EQ(coo.cols, 4);
  ASSERT_EQ(coo.nnz(), 3u);
  EXPECT_EQ(coo.row_idx[0], 0);
  EXPECT_EQ(coo.col_idx[0], 0);
  EXPECT_DOUBLE_EQ(coo.vals[1], -2.0);
}

TEST(Mmio, ReadSymmetricExpandsMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 5.0\n"
      "3 2 6.0\n");
  const bs::Coo coo = bs::read_matrix_market(in);
  EXPECT_EQ(coo.nnz(), 5u); // diagonal entry not mirrored
  const bs::Csr csr = bs::coo_to_csr(coo);
  EXPECT_EQ(csr.row_length(0), 2); // (0,0) and the mirrored (0,1)
  EXPECT_EQ(csr.row_length(1), 2); // (1,0) and the mirrored (1,2)
}

TEST(Mmio, ReadSkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const bs::Coo coo = bs::read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.vals[0], -3.0); // (0,1) mirrored with sign flip
  EXPECT_DOUBLE_EQ(coo.vals[1], 3.0);
}

TEST(Mmio, ReadPatternDefaultsToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const bs::Coo coo = bs::read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_DOUBLE_EQ(coo.vals[0], 1.0);
}

TEST(Mmio, WriteReadRoundTrip) {
  bs::Coo coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(0, 0, 1.25);
  coo.push(1, 2, -0.5);
  coo.push(2, 1, 1e-17);
  std::ostringstream out;
  bs::write_matrix_market(out, coo);
  std::istringstream in(out.str());
  const bs::Coo back = bs::read_matrix_market(in);
  EXPECT_EQ(back.row_idx, coo.row_idx);
  EXPECT_EQ(back.col_idx, coo.col_idx);
  EXPECT_EQ(back.vals, coo.vals);
}

// ---- failure injection ----

TEST(MmioFailure, EmptyStream) {
  std::istringstream in("");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, MissingBanner) {
  std::istringstream in("3 3 1\n1 1 1.0\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, UnsupportedField) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate complex general\n"
      "1 1 1\n1 1 1.0 0.0\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, TruncatedEntries) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, IndexOutOfRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, MissingValue) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 1\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, MissingSizeLine) {
  std::istringstream in("%%MatrixMarket matrix coordinate real general\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, NonexistentFile) {
  EXPECT_THROW(bs::read_matrix_market_file("/nonexistent/path.mtx"),
               std::runtime_error);
}

TEST(MmioFailure, DimensionsBeyondIndexRange) {
  // 2^31 rows would silently wrap to a negative index_t without the size
  // check; the reader must reject the header up front.
  std::istringstream rows_too_big(
      "%%MatrixMarket matrix coordinate real general\n"
      "2147483648 2 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(bs::read_matrix_market(rows_too_big), std::runtime_error);
  std::istringstream cols_too_big(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2147483648 1\n"
      "1 1 1.0\n");
  EXPECT_THROW(bs::read_matrix_market(cols_too_big), std::runtime_error);
}

TEST(MmioFailure, EntryCountBeyondIndexRange) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2147483648\n"
      "1 1 1.0\n");
  EXPECT_THROW(bs::read_matrix_market(in), std::runtime_error);
}

TEST(MmioFailure, AdversarialEntryCountDoesNotPreallocate) {
  // An in-range but absurd entry count over a tiny body must fail with the
  // truncation error — after the reserve cap, not an out-of-memory abort.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "10 10 2000000000\n"
      "1 1 1.0\n");
  try {
    bs::read_matrix_market(in);
    FAIL() << "expected truncation error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST(MmioFailure, SymmetricExpansionBeyondIndexRangeMessage) {
  // The post-expansion guard exists (doubling off-diagonal entries can
  // overflow index_t even when the header passes); exercise the happy path
  // right below it to pin the expansion accounting.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 1.0\n");
  const bs::Coo coo = bs::read_matrix_market(in);
  EXPECT_EQ(coo.nnz(), 3u); // one off-diagonal doubled + one diagonal
}
