// BRO-HYB tests: split consistency with HYB, SpMV agreement, and the
// Table 4 accounting (% BRO-ELL, η over all index data).
#include <gtest/gtest.h>

#include <vector>

#include "core/bro_hyb.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr skewed_matrix(std::uint64_t seed) {
  // Mostly short rows plus a handful of very long ones: the HYB sweet spot.
  bs::GenSpec spec;
  spec.rows = 3000;
  spec.cols = 3000;
  spec.mu = 8;
  spec.sigma = 3;
  spec.spike_rows = 12;
  spec.spike_len = 900;
  spec.seed = seed;
  return bs::generate(spec);
}

void expect_spmv_matches(const bs::Csr& csr, const bc::BroHyb& bro) {
  bro::Rng rng(31);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_bro(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  bro.spmv(x, y_bro);
  for (index_t r = 0; r < csr.rows; ++r)
    EXPECT_NEAR(y_bro[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)],
                1e-11 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])));
}

} // namespace

TEST(BroHyb, SplitMatchesHybHeuristic) {
  const bs::Csr csr = skewed_matrix(1);
  const bs::Hyb hyb = bs::csr_to_hyb(csr);
  const bc::BroHyb bro = bc::BroHyb::compress(csr);
  EXPECT_EQ(bro.split_width(), hyb.ell.width);
  EXPECT_NEAR(bro.ell_fraction(), hyb.ell_fraction(), 1e-12);
}

TEST(BroHyb, SpmvMatchesReference) {
  const bs::Csr csr = skewed_matrix(2);
  expect_spmv_matches(csr, bc::BroHyb::compress(csr));
}

TEST(BroHyb, ForcedWidthPropagates) {
  const bs::Csr csr = skewed_matrix(3);
  bc::BroHybOptions opts;
  opts.width_override = 4;
  const bc::BroHyb bro = bc::BroHyb::compress(csr, opts);
  EXPECT_EQ(bro.split_width(), 4);
  expect_spmv_matches(csr, bro);
}

TEST(BroHyb, AllCooWhenWidthZero) {
  const bs::Csr csr = skewed_matrix(4);
  bc::BroHybOptions opts;
  opts.width_override = 0;
  const bc::BroHyb bro = bc::BroHyb::compress(csr, opts);
  EXPECT_DOUBLE_EQ(bro.ell_fraction(), 0.0);
  EXPECT_EQ(bro.coo_part().nnz(), csr.nnz());
  expect_spmv_matches(csr, bro);
}

TEST(BroHyb, SavingsAccounting) {
  const bs::Csr csr = skewed_matrix(5);
  const bc::BroHyb bro = bc::BroHyb::compress(csr);
  // Original = ELL index + 2 arrays for the COO overflow.
  const std::size_t coo_nnz = bro.coo_part().nnz();
  EXPECT_EQ(bro.original_index_bytes(),
            bro.ell_part().original_index_bytes() + 8 * coo_nnz);
  // The COO column indices are counted uncompressed.
  EXPECT_GE(bro.compressed_index_bytes(), 4 * coo_nnz);
  EXPECT_LT(bro.compressed_index_bytes(), bro.original_index_bytes());
}

TEST(BroHyb, UniformMatrixIsAllEll) {
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  const bc::BroHyb bro = bc::BroHyb::compress(csr);
  EXPECT_GT(bro.ell_fraction(), 0.95);
  expect_spmv_matches(csr, bro);
}

TEST(BroHyb, EmptyMatrix) {
  bs::Csr csr;
  csr.rows = 4;
  csr.cols = 4;
  csr.row_ptr.assign(5, 0);
  const bc::BroHyb bro = bc::BroHyb::compress(csr);
  std::vector<value_t> x(4, 1.0), y(4, -1.0);
  bro.spmv(x, y);
  for (const auto v : y) EXPECT_EQ(v, 0.0);
}
