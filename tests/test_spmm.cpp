// Multi-vector (SpMM) kernel tests. The contract under test is bitwise:
// every column of native_spmm_* / SpmvPlan::execute_multi must equal the
// corresponding single-vector kernel run on that column exactly — the SpMM
// kernels replicate the single-vector accumulation order, so EXPECT_EQ on
// doubles is the right assertion, not a tolerance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "engine/format_registry.h"
#include "engine/plan.h"
#include "kernels/native_spmm.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace bc = bro::core;
namespace be = bro::engine;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_batch(index_t cols, int k,
                                  std::uint64_t seed = 99) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(cols) *
                         static_cast<std::size_t>(k));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

std::vector<value_t> column(const std::vector<value_t>& batch, index_t n,
                            int k, int j) {
  std::vector<value_t> out(static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < out.size(); ++c)
    out[c] = batch[c * static_cast<std::size_t>(k) +
                   static_cast<std::size_t>(j)];
  return out;
}

/// Run every SpMM kernel on `csr` for this k and assert each column equals
/// the matching single-vector kernel bitwise.
void check_kernels(const bs::Csr& csr, int k) {
  SCOPED_TRACE("k = " + std::to_string(k));
  const auto x_batch = random_batch(csr.cols, k);
  const std::size_t rows = static_cast<std::size_t>(csr.rows);
  std::vector<value_t> y_batch(rows * static_cast<std::size_t>(k));
  std::vector<value_t> y_single(rows);

  const bs::Ell ell = bs::csr_to_ell(csr);
  const bc::BroEll bro_ell = bc::BroEll::compress(ell);
  const bc::BroCoo bro_coo = bc::BroCoo::compress(bs::csr_to_coo(csr));

  const auto run_single = [&](auto&& kernel) {
    for (int j = 0; j < k; ++j) {
      const auto xj = column(x_batch, csr.cols, k, j);
      kernel(xj, y_single);
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(y_batch[r * static_cast<std::size_t>(k) +
                          static_cast<std::size_t>(j)],
                  y_single[r])
            << "column " << j << " row " << r;
    }
  };

  bk::native_spmm_csr(csr, x_batch, y_batch, k);
  run_single([&](auto& xj, auto& yj) { bk::native_spmv_csr(csr, xj, yj); });

  bk::native_spmm_ell(ell, x_batch, y_batch, k);
  run_single([&](auto& xj, auto& yj) { bk::native_spmv_ell(ell, xj, yj); });

  bk::native_spmm_bro_ell(bro_ell, x_batch, y_batch, k);
  run_single(
      [&](auto& xj, auto& yj) { bk::native_spmv_bro_ell(bro_ell, xj, yj); });

  bk::native_spmm_bro_coo(bro_coo, x_batch, y_batch, k);
  run_single(
      [&](auto& xj, auto& yj) { bk::native_spmv_bro_coo(bro_coo, xj, yj); });
}

void check_kernels_all_k(const bs::Csr& csr) {
  for (const int k : {1, 3, 8}) check_kernels(csr, k);
}

} // namespace

TEST(Spmm, PoissonGrid) { check_kernels_all_k(bs::generate_poisson2d(40, 31)); }

TEST(Spmm, RandomLocal) {
  bs::GenSpec spec;
  spec.rows = 1200;
  spec.cols = 1100;
  spec.mu = 10;
  spec.sigma = 5;
  spec.run = 3;
  spec.seed = 21;
  check_kernels_all_k(bs::generate(spec));
}

TEST(Spmm, EmptyRowsInterleaved) {
  bs::Coo coo;
  coo.rows = 500;
  coo.cols = 500;
  for (index_t r = 0; r < 500; r += 7) coo.push(r, (r * 13) % 500, 1.5);
  coo.canonicalize();
  check_kernels_all_k(bs::coo_to_csr(coo));
}

TEST(Spmm, LongRowAcrossIntervals) {
  // One long row spanning many BRO-COO intervals: the k-wide carry sums
  // must merge across interval boundaries exactly like the scalar carries.
  bs::Coo coo;
  coo.rows = 10;
  coo.cols = 6000;
  for (index_t c = 0; c < 6000; ++c) coo.push(4, c, 1.0);
  check_kernels_all_k(bs::coo_to_csr(coo));
}

TEST(Spmm, SingleRowSingleColumn) {
  bs::Coo coo;
  coo.rows = 1;
  coo.cols = 1;
  coo.push(0, 0, 2.5);
  check_kernels_all_k(bs::coo_to_csr(coo));
}

TEST(Spmm, RejectsBadShapes) {
  const bs::Csr csr = bs::generate_poisson2d(8, 8);
  std::vector<value_t> x(static_cast<std::size_t>(csr.cols) * 2);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows) * 2);
  EXPECT_THROW(bk::native_spmm_csr(csr, x, y, 0), std::runtime_error);
  EXPECT_THROW(bk::native_spmm_csr(csr, x, y, 3), std::runtime_error);
  std::vector<value_t> y_short(static_cast<std::size_t>(csr.rows) * 2 - 1);
  EXPECT_THROW(bk::native_spmm_csr(csr, x, y_short, 2), std::runtime_error);
}

// The planned path must be bitwise-identical per column for EVERY registered
// format — natively for CSR/ELL/BRO-ELL/BRO-COO, through the gather/scatter
// fallback for the rest — and allocation-free after the first call.
TEST(Spmm, ExecuteMultiMatchesExecuteForAllFormats) {
  bs::GenSpec spec;
  spec.rows = 600;
  spec.cols = 550;
  spec.mu = 8;
  spec.sigma = 3;
  spec.seed = 33;
  auto matrix = std::make_shared<bc::Matrix>(
      bc::Matrix::from_csr(bs::generate(spec)));

  constexpr int k = 5;
  const auto x_batch = random_batch(matrix->cols(), k, 7);
  const std::size_t rows = static_cast<std::size_t>(matrix->rows());
  std::vector<value_t> y_batch(rows * k), y_single(rows);

  for (const auto& t : be::format_registry()) {
    SCOPED_TRACE(t.name);
    if (!t.applicable(matrix->csr(), 3.0)) continue;
    be::SpmvPlan plan(matrix, t.format);
    plan.execute_multi(x_batch, y_batch, k);
    const std::size_t allocs = plan.workspace_allocations();
    for (int j = 0; j < k; ++j) {
      const auto xj = column(x_batch, matrix->cols(), k, j);
      plan.execute(xj, y_single);
      for (std::size_t r = 0; r < rows; ++r)
        ASSERT_EQ(y_batch[r * k + static_cast<std::size_t>(j)], y_single[r])
            << "column " << j << " row " << r;
    }
    plan.execute_multi(x_batch, y_batch, k);
    EXPECT_EQ(plan.workspace_allocations(), allocs)
        << "second execute_multi grew the workspace";
  }
}

TEST(Spmm, ExecuteMultiRejectsBadShapes) {
  auto matrix = std::make_shared<bc::Matrix>(
      bc::Matrix::from_csr(bs::generate_poisson2d(6, 6)));
  be::SpmvPlan plan(matrix, bc::Format::kCsr);
  std::vector<value_t> x(static_cast<std::size_t>(matrix->cols()) * 2);
  std::vector<value_t> y(static_cast<std::size_t>(matrix->rows()) * 2);
  EXPECT_THROW(plan.execute_multi(x, y, 0), std::runtime_error);
  EXPECT_THROW(plan.execute_multi(x, y, 4), std::runtime_error);
}
