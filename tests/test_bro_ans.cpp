// BRO-ANS tests: tANS table construction and row coder round-trips, the
// compress/decompress pipeline against its ELLPACK source, SpMV agreement
// with the CSR reference, host-kernel bitwise parity, serialization, and
// the space-savings claim against BRO-ELL on structured matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <tuple>
#include <vector>

#include "bits/ans.h"
#include "check/validate.h"
#include "core/bro_ans.h"
#include "core/bro_ell.h"
#include "core/serialize.h"
#include "kernels/bro_decode_simd.h"
#include "kernels/cpu_features.h"
#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/adversarial.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bb = bro::bits;
namespace bc = bro::core;
namespace bk = bro::kernels;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr paper_matrix_csr() {
  bs::Coo coo;
  coo.rows = 4;
  coo.cols = 5;
  const index_t r[] = {0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3};
  const index_t c[] = {0, 2, 0, 1, 2, 3, 4, 1, 2, 4, 3, 4};
  const value_t v[] = {3, 2, 2, 6, 5, 4, 1, 1, 9, 7, 8, 3};
  for (int i = 0; i < 12; ++i) coo.push(r[i], c[i], v[i]);
  return bs::coo_to_csr(coo);
}

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(n);
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_spmv_matches(const bs::Csr& csr, const bc::BroAns& bro,
                         std::uint64_t seed = 99) {
  const auto x = random_vector(static_cast<std::size_t>(csr.cols), seed);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_bro(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  bro.spmv(x, y_bro);
  for (index_t r = 0; r < csr.rows; ++r)
    EXPECT_NEAR(y_bro[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)],
                1e-12 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])))
        << "row " << r;
}

std::vector<std::uint32_t> round_trip(const bb::AnsTable& table,
                                      const std::vector<std::uint32_t>& in) {
  bro::bits::BitString bits;
  std::vector<bb::AnsEncSym> scratch;
  bb::ans_encode_row(table, in, scratch, bits);
  return bb::ans_decode_row(table, bits, in.size());
}

/// Every ISA the parity sweeps can actually force on this host/binary:
/// scalar always, each SIMD set when compiled in and supported by the CPU.
std::vector<bk::SimdIsa> host_isas() {
  std::vector<bk::SimdIsa> isas = {bk::SimdIsa::kScalar};
  for (const bk::SimdIsa isa : {bk::SimdIsa::kSse4, bk::SimdIsa::kAvx2})
    if (bk::simd_isa_runnable(isa)) isas.push_back(isa);
  return isas;
}

void expect_bitwise(const std::vector<value_t>& got,
                    const std::vector<value_t>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t r = 0; r < want.size(); ++r)
    ASSERT_EQ(std::memcmp(&got[r], &want[r], sizeof(value_t)), 0)
        << what << " diverges at row " << r << ": " << got[r] << " vs "
        << want[r];
}

} // namespace

// ---- tANS table and row coder ----

TEST(AnsTable, NormalizedFrequenciesSumToTableSize) {
  std::vector<std::uint64_t> hist(bb::AnsTable::kNumClasses, 0);
  hist[0] = 1000;
  hist[1] = 500;
  hist[3] = 17;
  hist[12] = 1;
  for (int tl = bb::AnsTable::kMinTableLog; tl <= bb::AnsTable::kMaxTableLog;
       ++tl) {
    const auto table = bb::AnsTable::from_histogram(hist, tl);
    std::uint64_t sum = 0;
    for (const auto f : table.freqs()) sum += f;
    EXPECT_EQ(sum, table.size()) << "table_log " << tl;
    // Every present class keeps a non-zero slot, absent classes get none.
    for (std::size_t s = 0; s < hist.size(); ++s)
      EXPECT_EQ(table.freq(static_cast<int>(s)) > 0, hist[s] > 0)
          << "class " << s;
  }
}

TEST(AnsTable, EmptyHistogramStillBuilds) {
  const std::vector<std::uint64_t> hist(bb::AnsTable::kNumClasses, 0);
  const auto table = bb::AnsTable::from_histogram(hist, 8);
  // Degenerate model: all mass on the padding class so streams of nothing
  // but padding (empty slices) stay codable.
  EXPECT_EQ(table.freq(0), table.size());
  const std::vector<std::uint32_t> zeros(7, 0);
  EXPECT_EQ(round_trip(table, zeros), zeros);
}

TEST(AnsRowCoder, RoundTripsMixedDeltas) {
  std::vector<std::uint64_t> hist(bb::AnsTable::kNumClasses, 0);
  const std::vector<std::uint32_t> deltas = {1, 5, 0,  17, 1,    1,
                                             0, 3, 96, 2,  40000, 1};
  for (const auto d : deltas) ++hist[static_cast<std::size_t>(
      bb::ans_class_of(d))];
  const auto table = bb::AnsTable::from_histogram(hist, 9);
  EXPECT_EQ(round_trip(table, deltas), deltas);
}

TEST(AnsRowCoder, RoundTripsExtremeWidthsAndSkew) {
  // One near-max-width delta amid a sea of 1s: the normalized frequency of
  // the wide class is clamped to 1 slot, the worst case for state renorm.
  std::vector<std::uint32_t> deltas(300, 1);
  deltas[7] = 0x7fffffffu;  // 31-bit class
  deltas[100] = 0xffffffffu; // 32-bit class
  deltas[200] = 0;           // padding amid the row
  std::vector<std::uint64_t> hist(bb::AnsTable::kNumClasses, 0);
  for (const auto d : deltas)
    ++hist[static_cast<std::size_t>(bb::ans_class_of(d))];
  for (int tl : {bb::AnsTable::kMinTableLog, 10, bb::AnsTable::kMaxTableLog}) {
    const auto table = bb::AnsTable::from_histogram(hist, tl);
    EXPECT_EQ(round_trip(table, deltas), deltas) << "table_log " << tl;
  }
}

TEST(AnsRowCoder, SingleClassDegeneratesToNearZeroBits) {
  // All deltas in one class: the ANS state never renormalizes beyond the
  // mantissa bits, so the stream is ~mantissa-only. 512 deltas of class 1
  // (mantissa 0 bits) must fit in little more than the initial state.
  std::vector<std::uint64_t> hist(bb::AnsTable::kNumClasses, 0);
  hist[1] = 512;
  const auto table = bb::AnsTable::from_histogram(hist, 10);
  const std::vector<std::uint32_t> deltas(512, 1);
  bro::bits::BitString bits;
  std::vector<bb::AnsEncSym> scratch;
  bb::ans_encode_row(table, deltas, scratch, bits);
  EXPECT_LE(bits.size_bits(), 64u); // initial state + slack, not 512 bits
  EXPECT_EQ(bb::ans_decode_row(table, bits, deltas.size()), deltas);
}

// ---- compression pipeline ----

TEST(BroAns, PaperExampleRoundTrip) {
  const bs::Csr csr = paper_matrix_csr();
  const bs::Ell ell = bs::csr_to_ell(csr);
  bc::BroAnsOptions opts;
  opts.slice_height = 2;
  const bc::BroAns bro = bc::BroAns::compress(ell, opts);
  EXPECT_EQ(bro.rows(), 4);
  EXPECT_EQ(bro.cols(), 5);
  EXPECT_EQ(bro.slices().size(), 2u);
  const bs::Ell out = bro.decompress();
  EXPECT_EQ(out.col_idx, ell.col_idx);
  EXPECT_EQ(out.vals, ell.vals);
  expect_spmv_matches(csr, bro);
}

TEST(BroAns, EmptyAndSingleRowMatrices) {
  bs::Csr empty;
  empty.rows = 3;
  empty.cols = 4;
  empty.row_ptr.assign(4, 0);
  const bc::BroAns bro = bc::BroAns::compress(bs::csr_to_ell(empty));
  EXPECT_EQ(bro.width(), 0);
  std::vector<value_t> y(3, 42);
  bro.spmv(std::vector<value_t>(4, 1.0), y);
  for (const auto v : y) EXPECT_EQ(v, 0);

  bs::Coo coo;
  coo.rows = 1;
  coo.cols = 6;
  coo.push(0, 5, 2.5);
  const bs::Csr one = bs::coo_to_csr(coo);
  const bc::BroAns bro1 = bc::BroAns::compress(bs::csr_to_ell(one));
  expect_spmv_matches(one, bro1);
}

class BroAnsProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(BroAnsProperty, RoundTripAndSpmv) {
  const auto [h, sym_len, table_log, kind] = GetParam();

  bs::Csr csr;
  switch (kind) {
    case 0: csr = bs::generate_poisson2d(20, 21); break;
    case 1: {
      bs::GenSpec spec;
      spec.rows = 777;
      spec.cols = 900;
      spec.mu = 12;
      spec.sigma = 6;
      spec.local_prob = 0.5;
      spec.seed = 5;
      csr = bs::generate(spec);
      break;
    }
    case 2: {
      bs::GenSpec spec;
      spec.rows = 300;
      spec.cols = 64;
      spec.mu = 30;
      spec.sigma = 15;
      spec.local_prob = 0.0; // dense-ish rows, wild deltas
      spec.seed = 6;
      csr = bs::generate(spec);
      break;
    }
    case 3: csr = bs::generate_dense(65, 33); break;
    default: FAIL();
  }

  const bs::Ell ell = bs::csr_to_ell(csr);
  bc::BroAnsOptions opts;
  opts.slice_height = h;
  opts.sym_len = sym_len;
  opts.table_log = table_log;
  const bc::BroAns bro = bc::BroAns::compress(ell, opts);

  const bs::Ell out = bro.decompress();
  ASSERT_EQ(out.col_idx, ell.col_idx);
  ASSERT_EQ(out.vals, ell.vals);
  expect_spmv_matches(csr, bro);
  EXPECT_TRUE(bro::check::validate_bro_ans(bro, &csr).empty());

  // Host kernels: multi-chain and (when available) SIMD dispatch must be
  // bitwise identical to the single-chain sequential baseline.
  const auto x = random_vector(static_cast<std::size_t>(csr.cols), 31);
  std::vector<value_t> y_gen(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_nat(static_cast<std::size_t>(csr.rows));
  bk::native_spmv_bro_ans_generic(bro, x, y_gen);
  bk::native_spmv_bro_ans(bro, x, y_nat);
  EXPECT_EQ(y_gen, y_nat);
  const auto kernels = bk::plan_bro_ans_kernels(bro);
  std::vector<value_t> y_plan(static_cast<std::size_t>(csr.rows));
  bk::native_spmv_bro_ans(bro, kernels, x, y_plan);
  EXPECT_EQ(y_gen, y_plan);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroAnsProperty,
    ::testing::Combine(::testing::Values(2, 64, 256),
                       ::testing::Values(32, 64),
                       ::testing::Values(7, 10),
                       ::testing::Values(0, 1, 2, 3)));

// ---- serialization ----

TEST(BroAnsSerialize, StreamRoundTripIsExact) {
  const bs::Csr csr = bs::generate_poisson2d(17, 19);
  bc::BroAnsOptions opts;
  opts.slice_height = 16;
  const bc::BroAns bro = bc::BroAns::compress(bs::csr_to_ell(csr), opts);

  std::stringstream buf;
  bc::write_bro_ans(buf, bro);
  const bc::BroAns back = bc::read_bro_ans(buf);

  EXPECT_EQ(back.rows(), bro.rows());
  EXPECT_EQ(back.cols(), bro.cols());
  EXPECT_EQ(back.width(), bro.width());
  EXPECT_EQ(back.table().freqs(), bro.table().freqs());
  ASSERT_EQ(back.slices().size(), bro.slices().size());
  EXPECT_EQ(back.vals(), bro.vals());
  expect_spmv_matches(csr, back);
  EXPECT_TRUE(bro::check::validate_bro_ans(back, &csr).empty());
}

TEST(BroAnsSerialize, RejectsCorruptStream) {
  const bs::Csr csr = bs::generate_poisson2d(5, 5);
  const bc::BroAns bro = bc::BroAns::compress(bs::csr_to_ell(csr));
  std::stringstream buf;
  bc::write_bro_ans(buf, bro);
  std::string bytes = buf.str();
  bytes[0] ^= 0x5a; // clobber the magic
  std::stringstream bad(bytes);
  EXPECT_THROW(bc::read_bro_ans(bad), std::runtime_error);
}

// ---- space savings ----

TEST(BroAnsSavings, BeatsFixedWidthOnStructuredMatrices) {
  // Aligned-block FEM-style structure: per-column deltas concentrate in a
  // couple of bit-width classes, exactly where entropy coding pulls ahead
  // of BRO-ELL's per-column fixed widths.
  bs::GenSpec spec;
  spec.rows = 2000;
  spec.cols = 2000;
  spec.mu = 14;
  spec.sigma = 3;
  spec.aligned_blocks = true;
  spec.run = 4;
  spec.seed = 11;
  const bs::Csr csr = bs::generate(spec);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const bc::BroAns ans = bc::BroAns::compress(ell);
  const bc::BroEll ref = bc::BroEll::compress(ell);
  EXPECT_LT(ans.compressed_index_bytes(), ref.compressed_index_bytes());
  EXPECT_LT(ans.compressed_index_bytes(), ans.original_index_bytes());
  EXPECT_LE(ans.compressed_index_bytes(), ans.resident_index_bytes());
}

// ---- SIMD dispatch parity ----

/// Selection honors the forced ISA when its kernel set carries an SpMV for
/// the symbol length and falls back to the scalar multi-chain kernel
/// (tagged kScalar) otherwise — today that is every 64-bit-symbol request.
TEST(AnsSimdParity, SelectionTagsAndScalarFallback) {
  for (const bk::SimdIsa isa : host_isas()) {
    for (const int sym_len : {32, 64}) {
      const bk::BroAnsKernel k = bk::select_bro_ans_kernel(sym_len, isa);
      ASSERT_NE(k.spmv, nullptr);
      EXPECT_EQ(k.width, -1);
      const bk::AnsSimdKernelSet* set = bk::ans_simd_kernel_set(isa);
      const bool vec = set != nullptr &&
                       (sym_len == 32 ? set->spmv32 : set->spmv64) != nullptr;
      EXPECT_EQ(k.isa, vec ? isa : bk::SimdIsa::kScalar)
          << bk::simd_isa_name(isa) << " sym" << sym_len;
      if (vec) {
        EXPECT_EQ(k.spmv, sym_len == 32 ? set->spmv32 : set->spmv64);
      }
    }
    bk::ScopedSimdIsa forced(isa);
    const bs::Csr csr = bs::generate_poisson2d(12, 13);
    const auto bro = bc::BroAns::compress(bs::csr_to_ell(csr));
    const auto kernels = bk::plan_bro_ans_kernels(bro);
    ASSERT_EQ(kernels.size(), bro.slices().size());
    for (const auto& k : kernels)
      EXPECT_EQ(k.spmv,
                bk::select_bro_ans_kernel(bro.options().sym_len, isa).spmv);
  }
}

/// The adversarial battery swept across every host ISA, both symbol
/// lengths, and the table_log extremes: the dispatched SpMV (inline and
/// plan-time selection) must reproduce the single-chain sequential
/// decoder bit for bit. Compressions are ISA-independent, so each config
/// is built once and only the kernel calls sweep the forced ISA — the
/// shape of test_decode_dispatch's AdversarialParity.
TEST(AnsSimdParity, AdversarialSweepAcrossIsasTableLogsSymLens) {
  const auto isas = host_isas();
  for (auto& adversarial : bs::adversarial_suite(5)) {
    const bs::Csr& csr = adversarial.csr;
    if (csr.nnz() == 0 || csr.rows == 0) continue;
    // ELLPACK blows up on spike shapes; gate like the registry does.
    const double expand = static_cast<double>(csr.rows) *
                          static_cast<double>(csr.max_row_length());
    if (expand > 3.0 * static_cast<double>(csr.nnz())) continue;
    const bs::Ell ell = bs::csr_to_ell(csr);
    const auto x = random_vector(static_cast<std::size_t>(csr.cols), 31);
    std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
    std::vector<value_t> y_gen(static_cast<std::size_t>(csr.rows));

    for (const int sym_len : {32, 64})
      for (const int table_log :
           {bb::AnsTable::kMinTableLog, 10, bb::AnsTable::kMaxTableLog}) {
        bc::BroAnsOptions opts;
        opts.sym_len = sym_len;
        opts.table_log = table_log;
        opts.slice_height = 64; // several full lane groups + partial tails
        const bc::BroAns bro = bc::BroAns::compress(ell, opts);
        bk::native_spmv_bro_ans_generic(bro, x, y_gen);

        for (const bk::SimdIsa isa : isas) {
          bk::ScopedSimdIsa forced(isa);
          bk::native_spmv_bro_ans(bro, x, y);
          expect_bitwise(y, y_gen, adversarial.name.c_str());

          const auto kernels = bk::plan_bro_ans_kernels(bro);
          bk::native_spmv_bro_ans(bro, kernels, x, y);
          expect_bitwise(y, y_gen, adversarial.name.c_str());
        }
      }
  }
}

// ---- 64-bit eager refill ----

/// Regression for the AnsChain<uint64_t> eager two-slot refill: wide
/// deltas at the largest table make per-symbol reads of up to
/// mantissa + renorm ~ 34 bits, so consecutive symbols drain the 64-bit
/// window fast enough that nearly every refill splices bits across a slot
/// boundary. The stream must round-trip exactly and the multi-chain
/// decoder must match the single-chain baseline bitwise.
TEST(BroAnsDecode, EagerRefillSpliceAtSymLen64) {
  bs::Coo coo;
  coo.rows = 24; // three lane groups, every chain hits the wide deltas
  coo.cols = 1 << 20;
  bro::Rng rng(0xeefe11);
  for (index_t r = 0; r < coo.rows; ++r) {
    index_t col = static_cast<index_t>(rng.next() % 64);
    for (int j = 0; j < 48 && col < coo.cols; ++j) {
      coo.push(r, col, rng.uniform() * 2 - 1);
      // Alternate near-maximal jumps (19-bit mantissas) with tiny local
      // steps so renorm counts swing across the whole [0, table_log] range.
      const index_t jump = (j % 2 == 0)
                               ? (coo.cols >> 6) +
                                     static_cast<index_t>(rng.next() % 1024)
                               : 1 + static_cast<index_t>(rng.next() % 3);
      col += jump;
    }
  }
  const bs::Csr csr = bs::coo_to_csr(coo);
  const bs::Ell ell = bs::csr_to_ell(csr);

  bc::BroAnsOptions opts;
  opts.sym_len = 64;
  opts.table_log = bb::AnsTable::kMaxTableLog;
  opts.slice_height = 8;
  const bc::BroAns bro = bc::BroAns::compress(ell, opts);

  const bs::Ell out = bro.decompress();
  ASSERT_EQ(out.col_idx, ell.col_idx);
  ASSERT_EQ(out.vals, ell.vals);
  EXPECT_TRUE(bro::check::validate_bro_ans(bro, &csr).empty());

  const auto x = random_vector(static_cast<std::size_t>(csr.cols), 7);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_gen(static_cast<std::size_t>(csr.rows));
  bk::native_spmv_bro_ans_generic(bro, x, y_gen);
  for (const bk::SimdIsa isa : host_isas()) {
    bk::ScopedSimdIsa forced(isa);
    bk::native_spmv_bro_ans(bro, x, y);
    expect_bitwise(y, y_gen, "eager-refill-sym64");
  }
}
