// Tests for the public bro::core::Matrix facade.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "core/matrix.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr uniform_matrix() { return bs::generate_poisson2d(30, 30); }

bs::Csr skewed_matrix() {
  bs::GenSpec spec;
  spec.rows = 1200;
  spec.cols = 1200;
  spec.mu = 6;
  spec.sigma = 2;
  spec.spike_rows = 4;
  spec.spike_len = 600;
  spec.seed = 21;
  return bs::generate(spec);
}

} // namespace

TEST(MatrixApi, FormatNames) {
  EXPECT_STREQ(bc::format_name(bc::Format::kBroEll), "BRO-ELL");
  EXPECT_STREQ(bc::format_name(bc::Format::kEllR), "ELLPACK-R");
  EXPECT_STREQ(bc::format_name(bc::Format::kHyb), "HYB");
}

TEST(MatrixApi, AutoFormatSelection) {
  const auto uniform = bc::Matrix::from_csr(uniform_matrix());
  EXPECT_EQ(uniform.auto_format(), bc::Format::kBroEll);
  const auto skewed = bc::Matrix::from_csr(skewed_matrix());
  EXPECT_EQ(skewed.auto_format(), bc::Format::kBroHyb);
}

TEST(MatrixApi, AllFormatsAgreeOnSpmv) {
  for (const auto& csr : {uniform_matrix(), skewed_matrix()}) {
    const auto m = bc::Matrix::from_csr(csr);
    bro::Rng rng(5);
    std::vector<value_t> x(static_cast<std::size_t>(m.cols()));
    for (auto& v : x) v = rng.uniform() * 2 - 1;
    std::vector<value_t> y_ref(static_cast<std::size_t>(m.rows()));
    m.spmv(x, y_ref, bc::Format::kCsr);

    for (const auto f :
         {bc::Format::kCoo, bc::Format::kEll, bc::Format::kEllR,
          bc::Format::kHyb, bc::Format::kBroEll, bc::Format::kBroCoo,
          bc::Format::kBroHyb}) {
      if (f == bc::Format::kEll || f == bc::Format::kEllR ||
          f == bc::Format::kBroEll) {
        // Skip padded formats for the spiked matrix (ELL expansion guard).
        if (m.auto_format() == bc::Format::kBroHyb) continue;
      }
      std::vector<value_t> y(static_cast<std::size_t>(m.rows()), -7.0);
      m.spmv(x, y, f);
      for (index_t r = 0; r < m.rows(); ++r)
        EXPECT_NEAR(y[static_cast<std::size_t>(r)],
                    y_ref[static_cast<std::size_t>(r)],
                    1e-11 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])))
            << bc::format_name(f) << " row " << r;
    }
  }
}

TEST(MatrixApi, DefaultSpmvUsesAutoFormat) {
  const auto m = bc::Matrix::from_csr(uniform_matrix());
  bro::Rng rng(6);
  std::vector<value_t> x(static_cast<std::size_t>(m.cols()));
  for (auto& v : x) v = rng.uniform();
  std::vector<value_t> y1(static_cast<std::size_t>(m.rows()));
  std::vector<value_t> y2(static_cast<std::size_t>(m.rows()));
  m.spmv(x, y1);
  m.spmv(x, y2, m.auto_format());
  EXPECT_EQ(y1, y2);
}

TEST(MatrixApi, SavingsPositiveForStructuredMatrix) {
  const auto m = bc::Matrix::from_csr(uniform_matrix());
  EXPECT_GT(m.space_savings(), 0.3);
  const auto s = m.savings();
  EXPECT_GT(s.kappa(), 1.0);
  EXPECT_NEAR(s.eta(), 1.0 - 1.0 / s.kappa(), 1e-12);
}

TEST(MatrixApi, StatsExposed) {
  const auto m = bc::Matrix::from_csr(uniform_matrix());
  const auto s = m.stats();
  EXPECT_EQ(s.rows, 900);
  EXPECT_EQ(s.max_row_length, 5);
}

TEST(MatrixApi, FromFile) {
  const std::string path = ::testing::TempDir() + "/bro_matrix_api_test.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 2\n"
        << "1 1 4.0\n"
        << "2 2 5.0\n";
  }
  const auto m = bc::Matrix::from_file(path);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.nnz(), 2u);
  std::vector<value_t> x = {1.0, 2.0};
  std::vector<value_t> y(2);
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  std::remove(path.c_str());
}

TEST(MatrixApi, RejectsInvalidCsr) {
  bs::Csr bad;
  bad.rows = 2;
  bad.cols = 2;
  bad.row_ptr = {0, 1, 1};
  bad.col_idx = {5}; // out of range
  bad.vals = {1.0};
  EXPECT_THROW(bc::Matrix::from_csr(std::move(bad)), std::runtime_error);
}
