// bro::net tests: wire-payload round-trips through every registered
// serializable format, frame reassembly and corruption handling, and the
// loopback server — end-to-end answers bitwise-identical to in-process
// submit, every serve-layer refusal surfaced as its typed status, counter
// reconciliation against STATS, and graceful shutdown under load.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/format_registry.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "serve/server.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bn = bro::net;
namespace bc = bro::core;
namespace be = bro::engine;
namespace bv = bro::serve;
using bro::index_t;
using bro::value_t;

namespace {

bc::Matrix make_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  bro::sparse::GenSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  spec.mu = 7;
  spec.sigma = 3;
  spec.seed = seed;
  return bc::Matrix::from_csr(bro::sparse::generate(spec));
}

std::vector<value_t> random_x(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

/// Raw TCP connection speaking hand-built frames: the tests that pipeline
/// several ops in one send (deterministic queue pressure) or send garbage
/// (protocol-error handling) need byte-level control NetClient hides.
struct RawConn {
  bro::UniqueFd fd;
  bn::FrameAssembler assembler;

  explicit RawConn(int port) {
    fd.reset(::socket(AF_INET, SOCK_STREAM, 0));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd.get(), bytes.data() + off,
                               bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next frame, reading as needed. nullopt = server closed the connection.
  std::optional<bn::Frame> recv_frame() {
    for (;;) {
      if (auto f = assembler.next()) return f;
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
      if (n <= 0) return std::nullopt;
      assembler.append(buf, static_cast<std::size_t>(n));
    }
  }
};

/// Every registered format that has a serialized form.
std::vector<const be::FormatTraits*> serializable_formats() {
  std::vector<const be::FormatTraits*> out;
  for (const auto& t : be::format_registry())
    if (t.serialize) out.push_back(&t);
  return out;
}

} // namespace

// ---------------------------------------------------------------------------
// Wire-payload round-trip: every registry format survives
// serialize -> frame -> reassemble -> parse -> deserialize bitwise.

TEST(Protocol, EveryRegistryFormatRoundTripsBitwise) {
  const bc::Matrix m = make_matrix(96, 80, 42);
  const auto formats = serializable_formats();
  ASSERT_GE(formats.size(), 5u); // all five BRO formats serialize
  for (const auto* t : formats) {
    SCOPED_TRACE(t->name);
    const auto bytes = bn::matrix_to_bro_bytes(m, t->format);

    // Through a frame, reassembled from awkward split points.
    const auto frame_bytes = bn::make_upload_request(7, "m", bytes);
    bn::FrameAssembler fa;
    const std::size_t cut = frame_bytes.size() / 3 + 1;
    for (std::size_t off = 0; off < frame_bytes.size(); off += cut) {
      const std::size_t n = std::min(cut, frame_bytes.size() - off);
      if (off + n < frame_bytes.size())
        EXPECT_FALSE(fa.next().has_value());
      fa.append(frame_bytes.data() + off, n);
    }
    const auto frame = fa.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->op(), bn::Op::kUploadMatrix);
    EXPECT_EQ(frame->header.request_id, 7u);
    const auto req = bn::parse_upload_request(*frame);
    EXPECT_EQ(req.matrix_id, "m");
    ASSERT_EQ(req.bro_bytes, bytes); // payload bitwise intact

    // Deserialize and re-serialize: the round trip must be lossless, so
    // the re-encoded stream is bitwise identical.
    const bc::Matrix back = bn::matrix_from_bro_bytes(req.bro_bytes);
    EXPECT_EQ(back.rows(), m.rows());
    EXPECT_EQ(back.cols(), m.cols());
    EXPECT_EQ(back.nnz(), m.nnz());
    EXPECT_EQ(bn::matrix_to_bro_bytes(back, t->format), bytes);
  }
}

TEST(Protocol, CodecsRoundTrip) {
  const std::vector<value_t> x = {1.5, -2.25, 0.0, 1e-9};
  auto f = [](std::vector<std::uint8_t> bytes) {
    bn::FrameAssembler fa;
    fa.append(bytes.data(), bytes.size());
    auto frame = fa.next();
    EXPECT_TRUE(frame.has_value());
    EXPECT_EQ(fa.buffered(), 0u);
    return *frame;
  };

  const auto sub = f(bn::make_submit_request(3, "mat", "cli", x));
  EXPECT_EQ(sub.op(), bn::Op::kSubmit);
  const auto sreq = bn::parse_submit_request(sub);
  EXPECT_EQ(sreq.matrix_id, "mat");
  EXPECT_EQ(sreq.client_id, "cli");
  EXPECT_EQ(sreq.x, x);

  EXPECT_EQ(bn::parse_vector_response(f(bn::make_vector_response(4, x))), x);

  const auto err = f(bn::make_error_response(5, bn::Status::kShed, 17, "no"));
  EXPECT_EQ(err.status(), bn::Status::kShed);
  const auto einfo = bn::parse_error_response(err);
  EXPECT_EQ(einfo.status, bn::Status::kShed);
  EXPECT_EQ(einfo.queue_depth, 17u);
  EXPECT_EQ(einfo.message, "no");

  bn::UploadAck ack{10, 20, 30};
  const auto got = bn::parse_upload_ack(f(bn::make_upload_ack(6, ack)));
  EXPECT_EQ(got.rows, 10u);
  EXPECT_EQ(got.cols, 20u);
  EXPECT_EQ(got.nnz, 30u);

  EXPECT_EQ(bn::parse_remove_request(f(bn::make_remove_request(7, "z"))), "z");
  EXPECT_TRUE(bn::parse_bool_response(f(bn::make_bool_response(8, true))));
  EXPECT_FALSE(bn::parse_bool_response(f(bn::make_bool_response(9, false))));

  bn::StatsSnapshot s;
  s.submitted = 1;
  s.rejected = 2;
  s.queue_full = 3;
  s.shed = 4;
  s.throttled = 5;
  s.served = 6;
  s.wait_p99 = 0.25;
  s.exec_p50 = 0.125;
  const auto s2 = bn::parse_stats_response(f(bn::make_stats_response(10, s)));
  EXPECT_EQ(s2.submitted, 1u);
  EXPECT_EQ(s2.queue_full, 3u);
  EXPECT_EQ(s2.throttled, 5u);
  EXPECT_EQ(s2.wait_p99, 0.25);
  EXPECT_EQ(s2.exec_p50, 0.125);
}

TEST(Protocol, MapsEveryRejectCauseToDistinctStatus) {
  const auto qf = bn::status_for(bv::RejectCause::kQueueFull);
  const auto sh = bn::status_for(bv::RejectCause::kShed);
  const auto th = bn::status_for(bv::RejectCause::kThrottled);
  EXPECT_EQ(qf, bn::Status::kQueueFull);
  EXPECT_EQ(sh, bn::Status::kShed);
  EXPECT_EQ(th, bn::Status::kThrottled);
  EXPECT_NE(qf, sh);
  EXPECT_NE(sh, th);
  EXPECT_NE(qf, th);
}

TEST(Protocol, RejectsTruncatedAndCorruptFrames) {
  const auto good = bn::make_empty_request(1, bn::Op::kPing);
  ASSERT_EQ(good.size(), bn::kFrameHeaderBytes);

  { // truncated header: incomplete, never an error
    bn::FrameAssembler fa;
    fa.append(good.data(), bn::kFrameHeaderBytes - 1);
    EXPECT_FALSE(fa.next().has_value());
  }
  { // truncated payload: incomplete until the last byte arrives
    const std::vector<value_t> x = {1.0};
    const auto frame = bn::make_submit_request(2, "m", "", x);
    bn::FrameAssembler fa;
    fa.append(frame.data(), frame.size() - 1);
    EXPECT_FALSE(fa.next().has_value());
    fa.append(frame.data() + frame.size() - 1, 1);
    EXPECT_TRUE(fa.next().has_value());
  }
  { // wrong version
    auto bad = good;
    bad[4] = bn::kProtocolVersion + 1;
    bn::FrameAssembler fa;
    fa.append(bad.data(), bad.size());
    EXPECT_THROW(fa.next(), bn::ProtocolError);
  }
  { // bad kind
    auto bad = good;
    bad[5] = 9;
    bn::FrameAssembler fa;
    fa.append(bad.data(), bad.size());
    EXPECT_THROW(fa.next(), bn::ProtocolError);
  }
  { // reserved byte set
    auto bad = good;
    bad[7] = 1;
    bn::FrameAssembler fa;
    fa.append(bad.data(), bad.size());
    EXPECT_THROW(fa.next(), bn::ProtocolError);
  }
  { // oversized payload length vs the assembler's bound
    auto bad = good;
    const std::uint32_t huge = 1000;
    std::memcpy(bad.data(), &huge, 4);
    bn::FrameAssembler fa(64);
    fa.append(bad.data(), bad.size());
    EXPECT_THROW(fa.next(), bn::ProtocolError);
  }
  { // trailing bytes inside a payload are a parse error, not a frame error
    auto frame = bn::make_remove_request(3, "m");
    frame.push_back(0xAB); // extend payload by one byte
    std::uint32_t len;
    std::memcpy(&len, frame.data(), 4);
    ++len;
    std::memcpy(frame.data(), &len, 4);
    bn::FrameAssembler fa;
    fa.append(frame.data(), frame.size());
    const auto parsed = fa.next();
    ASSERT_TRUE(parsed.has_value());
    EXPECT_THROW(bn::parse_remove_request(*parsed), std::runtime_error);
  }
  { // truncated .bro payload inside a well-formed frame
    const bc::Matrix m = make_matrix(32, 32, 1);
    auto bytes = bn::matrix_to_bro_bytes(m, bc::Format::kBroEll);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(bn::matrix_from_bro_bytes(bytes), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Loopback server.

TEST(NetServer, LoopbackMatchesInProcessBitwise) {
  bv::ServerOptions sopts;
  sopts.threads = 2;
  sopts.max_batch = 4;
  bv::SpmvServer remote_core(sopts);
  bn::NetServer server(remote_core, {});
  server.start();

  const bc::Matrix m = make_matrix(200, 160, 7);
  const auto bytes = bn::matrix_to_bro_bytes(m, bc::Format::kBroHyb);

  bn::NetClient cli("127.0.0.1", server.port());
  cli.ping();
  const auto ack = cli.upload_matrix("A", bytes);
  EXPECT_EQ(ack.rows, 200u);
  EXPECT_EQ(ack.cols, 160u);
  EXPECT_EQ(ack.nnz, m.nnz());

  // The in-process twin: same options, a matrix built from the same wire
  // bytes. Loopback answers must match its submit() bit for bit.
  bv::SpmvServer local(sopts);
  local.add_matrix("A", bn::matrix_from_bro_bytes(bytes));

  for (int r = 0; r < 8; ++r) {
    const auto x = random_x(160, 100 + static_cast<std::uint64_t>(r));
    const std::vector<value_t> want = local.submit("A", x).get();
    const std::vector<value_t> got = cli.submit("A", x);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << "row " << i << " round " << r;
  }

  // Pipelined: many in-flight ids on one connection, answered by id.
  std::vector<std::uint64_t> rids;
  std::vector<std::vector<value_t>> xs;
  for (int r = 0; r < 16; ++r) {
    xs.push_back(random_x(160, 500 + static_cast<std::uint64_t>(r)));
    rids.push_back(cli.enqueue_submit("A", xs.back()));
  }
  cli.flush();
  for (std::size_t r = rids.size(); r-- > 0;) { // reverse wait order
    const auto res = cli.wait_submit(rids[r]);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.y, local.submit("A", xs[r]).get());
  }

  server.stop();
}

TEST(NetServer, TypedStatusesForEveryRefusal) {
  // Synchronous core: the event loop is the only dispatcher, so a burst of
  // frames in one TCP segment meets the queue exactly as sent.
  bv::ServerOptions sopts;
  sopts.threads = 0;
  sopts.admission.rate = 1e-9; // effectively never refills
  sopts.admission.burst = 1;   // one token per client, ever
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(64, 48, 3);
  bn::NetClient cli("127.0.0.1", server.port());
  cli.upload_matrix("A", bn::matrix_to_bro_bytes(m, bc::Format::kBroEll));
  const auto x = random_x(48, 9);

  { // unknown matrix
    try {
      cli.submit("nope", x);
      FAIL() << "expected RpcError";
    } catch (const bn::RpcError& e) {
      EXPECT_EQ(e.status(), bn::Status::kUnknownMatrix);
    }
  }
  { // wrong x size
    try {
      cli.submit("A", random_x(5, 1));
      FAIL() << "expected RpcError";
    } catch (const bn::RpcError& e) {
      EXPECT_EQ(e.status(), bn::Status::kBadRequest);
    }
  }
  { // token bucket: first submit spends the only token, second throttles
    EXPECT_EQ(cli.submit("A", x, "alice").size(), 64u);
    try {
      cli.submit("A", x, "alice");
      FAIL() << "expected RpcError";
    } catch (const bn::RpcError& e) {
      EXPECT_EQ(e.status(), bn::Status::kThrottled);
    }
    // A different client id holds its own token.
    EXPECT_EQ(cli.submit("A", x, "bob").size(), 64u);
  }
  { // unknown op answers kBadRequest; the connection survives
    RawConn raw(server.port());
    raw.send_bytes(bn::encode_frame(bn::FrameKind::kRequest, 99, 1, {}));
    const auto resp = raw.recv_frame();
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status(), bn::Status::kBadRequest);
    raw.send_bytes(bn::make_empty_request(2, bn::Op::kPing));
    const auto pong = raw.recv_frame();
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->status(), bn::Status::kOk);
  }

  const auto stats = cli.stats();
  EXPECT_EQ(stats.throttled, 1u);
  EXPECT_EQ(stats.rejected, stats.queue_full + stats.shed + stats.throttled);
  server.stop();
}

TEST(NetServer, PipelinedBurstGetsQueueFullAndReconciles) {
  bv::ServerOptions sopts;
  sopts.threads = 0; // only the loop serves: buffered frames meet a full queue
  sopts.max_queue = 1;
  sopts.max_batch = 1;
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(32, 24, 5);
  bn::NetClient cli("127.0.0.1", server.port());
  cli.upload_matrix("A", bn::matrix_to_bro_bytes(m, bc::Format::kBroEll));
  const auto x = random_x(24, 11);

  // One send carrying many SUBMITs: the loop handles them back to back, so
  // with max_queue == 1 the burst must overflow (TCP may split the burst
  // across reads, so "how many" is not pinned — "at least one" and exact
  // counter reconciliation are).
  constexpr int kBurst = 8;
  std::vector<std::uint64_t> rids;
  for (int r = 0; r < kBurst; ++r) rids.push_back(cli.enqueue_submit("A", x));
  cli.flush();
  std::uint64_t ok = 0, queue_full = 0;
  for (const auto rid : rids) {
    const auto res = cli.wait_submit(rid);
    if (res.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(res.status, bn::Status::kQueueFull);
      EXPECT_GE(res.queue_depth, 1u);
      ++queue_full;
    }
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(queue_full, 1u);
  EXPECT_EQ(ok + queue_full, static_cast<std::uint64_t>(kBurst));

  const auto stats = cli.stats();
  EXPECT_EQ(stats.queue_full, queue_full);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.throttled, 0u);
  EXPECT_EQ(stats.served, ok);
  server.stop();
}

TEST(NetServer, ShedStatusAtConfiguredDepth) {
  bv::ServerOptions sopts;
  sopts.threads = 0;
  sopts.max_queue = 64;
  sopts.admission.shed_depth = 1; // shed as soon as one request is pending
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(32, 24, 6);
  bn::NetClient cli("127.0.0.1", server.port());
  cli.upload_matrix("A", bn::matrix_to_bro_bytes(m, bc::Format::kBroEll));
  const auto x = random_x(24, 13);

  std::vector<std::uint64_t> rids;
  for (int r = 0; r < 8; ++r) rids.push_back(cli.enqueue_submit("A", x));
  cli.flush();
  std::uint64_t ok = 0, shed = 0;
  for (const auto rid : rids) {
    const auto res = cli.wait_submit(rid);
    if (res.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(res.status, bn::Status::kShed);
      ++shed;
    }
  }
  EXPECT_GE(shed, 1u);
  const auto stats = cli.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.served, ok);
  server.stop();
}

TEST(NetServer, CorruptFrameClosesOnlyThatConnection) {
  bv::ServerOptions sopts;
  sopts.threads = 0;
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  bn::NetClient healthy("127.0.0.1", server.port());

  RawConn corrupt(server.port());
  std::vector<std::uint8_t> garbage(32, 0xFF);
  corrupt.send_bytes(garbage);
  EXPECT_FALSE(corrupt.recv_frame().has_value()); // server closed it

  healthy.ping(); // the healthy connection is unaffected

  for (int i = 0; i < 100 && server.stats().protocol_errors == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(server.stats().protocol_errors, 1u);
  server.stop();
}

TEST(NetServer, DrainFlushesInFlightThenCloses) {
  bv::ServerOptions sopts;
  sopts.threads = 2;
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(128, 96, 8);
  const auto bytes = bn::matrix_to_bro_bytes(m, bc::Format::kBroHyb);
  bn::NetClient cli("127.0.0.1", server.port());
  cli.upload_matrix("A", bytes);

  // Pipeline work, then DRAIN on a second connection while it is in
  // flight: every queued submit must still be answered (flushed), after
  // which the server closes connections and run() returns.
  std::vector<std::uint64_t> rids;
  const auto x = random_x(96, 21);
  for (int r = 0; r < 32; ++r) rids.push_back(cli.enqueue_submit("A", x));
  cli.flush();

  bn::NetClient drainer("127.0.0.1", server.port());
  drainer.drain();
  EXPECT_TRUE(server.draining());

  std::uint64_t answered = 0;
  for (const auto rid : rids) {
    const auto res = cli.wait_submit(rid);
    // Every id gets a response: a real y, or a typed shutdown refusal for
    // submits that arrived after the drain began. Never a dropped frame.
    if (res.ok()) {
      EXPECT_EQ(res.y.size(), 128u);
    } else {
      EXPECT_EQ(res.status, bn::Status::kShuttingDown);
    }
    ++answered;
  }
  EXPECT_EQ(answered, rids.size());

  server.stop(); // joins; idempotent after the client-initiated drain

  // New connections are refused once the listener is closed.
  EXPECT_THROW(bn::NetClient("127.0.0.1", server.port()).ping(),
               std::exception);
}

TEST(NetServer, StatsRemoveAndUploadRoundTrip) {
  bv::ServerOptions sopts;
  sopts.threads = 0;
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(40, 30, 9);
  bn::NetClient cli("127.0.0.1", server.port());

  const auto before = cli.stats();
  EXPECT_EQ(before.submitted, 0u);

  cli.upload_matrix("A", bn::matrix_to_bro_bytes(m, bc::Format::kBroCsr));
  EXPECT_EQ(cli.submit("A", random_x(30, 2)).size(), 40u);

  const auto after = cli.stats();
  EXPECT_EQ(after.submitted, 1u);
  EXPECT_EQ(after.served, 1u);

  EXPECT_TRUE(cli.remove_matrix("A"));
  EXPECT_FALSE(cli.remove_matrix("A")); // second remove: already gone
  try {
    cli.submit("A", random_x(30, 2));
    FAIL() << "expected RpcError";
  } catch (const bn::RpcError& e) {
    EXPECT_EQ(e.status(), bn::Status::kUnknownMatrix);
  }
  server.stop();
}

TEST(NetServer, ManyConnectionsConcurrently) {
  bv::ServerOptions sopts;
  sopts.threads = 2;
  bv::SpmvServer core(sopts);
  bn::NetServer server(core, {});
  server.start();

  const bc::Matrix m = make_matrix(100, 90, 10);
  {
    bn::NetClient up("127.0.0.1", server.port());
    up.upload_matrix("A", bn::matrix_to_bro_bytes(m, bc::Format::kBroEll));
  }

  constexpr int kThreads = 4, kReqs = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      bn::NetClient cli("127.0.0.1", server.port());
      for (int r = 0; r < kReqs; ++r) {
        const auto y =
            cli.submit("A", random_x(90, static_cast<std::uint64_t>(t * 1000 + r)));
        if (y.size() == 100) ok.fetch_add(1);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads * kReqs);

  const auto ns = server.stats();
  EXPECT_GE(ns.accepted, static_cast<std::uint64_t>(kThreads) + 1);
  EXPECT_EQ(ns.protocol_errors, 0u);
  server.stop();
}
