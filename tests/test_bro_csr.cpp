// BRO-CSR tests: round-trips, SpMV agreement (native + simulated), savings,
// and the power-law case the format exists for.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/bro_csr.h"
#include "kernels/sim_spmv_ext.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace gs = bro::sim;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 29) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_matches(const bs::Csr& csr, const std::vector<value_t>& y,
                    const std::vector<value_t>& x) {
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r]))) << r;
}

} // namespace

TEST(BroCsr, RoundTripPoisson) {
  const bs::Csr csr = bs::generate_poisson2d(33, 29);
  const bc::BroCsr bro = bc::BroCsr::compress(csr);
  const bs::Csr back = bro.decompress();
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_EQ(back.vals, csr.vals);
}

TEST(BroCsr, SpmvMatchesReference) {
  const bs::Csr csr = bs::generate_poisson2d(40, 35);
  const auto x = random_x(csr.cols);
  const bc::BroCsr bro = bc::BroCsr::compress(csr);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bro.spmv(x, y);
  expect_matches(csr, y, x);
}

TEST(BroCsr, HandlesPowerLawDirectly) {
  // The case ELL cannot represent: a few enormous rows.
  bs::GenSpec spec;
  spec.rows = 1200;
  spec.cols = 1200;
  spec.mu = 5;
  spec.sigma = 2;
  spec.spike_rows = 4;
  spec.spike_len = 900;
  spec.seed = 17;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  const bc::BroCsr bro = bc::BroCsr::compress(csr);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bro.spmv(x, y);
  expect_matches(csr, y, x);
  EXPECT_LT(bro.compressed_index_bytes(), bro.original_index_bytes());
}

TEST(BroCsr, EmptyRowsAndEmptyMatrix) {
  bs::Csr empty;
  empty.rows = 3;
  empty.cols = 3;
  empty.row_ptr = {0, 0, 0, 0};
  const bc::BroCsr bro = bc::BroCsr::compress(empty);
  std::vector<value_t> x(3, 1.0), y(3, -1.0);
  bro.spmv(x, y);
  for (const auto v : y) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(bro.decompress().nnz(), 0u);
}

TEST(BroCsr, PerRowBitWidths) {
  // Row 0: tight gaps (small width); row 1: one huge gap (wide).
  bs::Coo coo;
  coo.rows = 2;
  coo.cols = 1 << 20;
  for (index_t j = 0; j < 8; ++j) coo.push(0, j, 1.0);
  coo.push(1, 0, 1.0);
  coo.push(1, (1 << 20) - 1, 1.0);
  const bc::BroCsr bro = bc::BroCsr::compress(bs::coo_to_csr(coo));
  EXPECT_LE(bro.bits_per_row()[0], 2);
  EXPECT_EQ(bro.bits_per_row()[1], 20);
  EXPECT_EQ(bro.decode_row(1), (std::vector<index_t>{0, (1 << 20) - 1}));
}

TEST(BroCsr, RowsStartSymbolAligned) {
  const bs::Csr csr = bs::generate_poisson2d(17, 13);
  const bc::BroCsr bro = bc::BroCsr::compress(csr);
  const auto& ptr = bro.row_sym_ptr();
  ASSERT_EQ(ptr.size(), static_cast<std::size_t>(csr.rows) + 1);
  for (std::size_t r = 1; r < ptr.size(); ++r) EXPECT_GE(ptr[r], ptr[r - 1]);
  EXPECT_EQ(ptr.back(), bro.total_symbols());
}

TEST(BroCsr, SimKernelMatchesReference) {
  bs::GenSpec spec;
  spec.rows = 900;
  spec.cols = 900;
  spec.mu = 30;
  spec.sigma = 20;
  spec.len_dist = bs::LenDist::kLogNormal;
  spec.seed = 18;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  const bc::BroCsr bro = bc::BroCsr::compress(csr);
  const auto res = bk::sim_spmv_bro_csr(gs::tesla_k20(), bro, x);
  expect_matches(csr, res.y, x);
  EXPECT_GT(res.time.gflops, 0.0);
}

TEST(BroCsr, SimBeatsCsrVectorViaCompression) {
  // Same access pattern as CSR-vector but with compressed columns: BRO-CSR
  // must move fewer DRAM bytes.
  const auto entry = bs::find_suite_entry("cant");
  const bs::Csr csr = bs::generate_suite_matrix(*entry, 1.0 / 16.0);
  const auto x = random_x(csr.cols);
  const auto dev = gs::tesla_k20();
  const auto vec = bk::sim_spmv_csr_vector(dev, csr, x);
  const auto bro = bk::sim_spmv_bro_csr(dev, bc::BroCsr::compress(csr), x);
  EXPECT_LT(bro.stats.dram_bytes(), vec.stats.dram_bytes());
}

class BroCsrProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BroCsrProperty, RoundTripSweep) {
  const auto [sym_len, kind] = GetParam();
  bs::Csr csr;
  switch (kind) {
    case 0: csr = bs::generate_poisson2d(25, 25); break;
    case 1: {
      bs::GenSpec spec;
      spec.rows = 640;
      spec.cols = 2000;
      spec.mu = 9;
      spec.sigma = 5;
      spec.local_prob = 0.2;
      spec.seed = 21;
      csr = bs::generate(spec);
      break;
    }
    case 2: csr = bs::generate_dense(40, 64); break;
    default: FAIL();
  }
  bc::BroCsrOptions opts;
  opts.sym_len = sym_len;
  const bc::BroCsr bro = bc::BroCsr::compress(csr, opts);
  const bs::Csr back = bro.decompress();
  EXPECT_EQ(back.col_idx, csr.col_idx);

  const auto x = random_x(csr.cols);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bro.spmv(x, y);
  expect_matches(csr, y, x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BroCsrProperty,
                         ::testing::Combine(::testing::Values(32, 64),
                                            ::testing::Values(0, 1, 2)));
