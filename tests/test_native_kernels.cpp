// Native (OpenMP) kernel tests: agreement with the CSR reference across
// formats and matrix shapes, including the parallel BRO-COO carry handling.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace bc = bro::core;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 55) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void check_all(const bs::Csr& csr) {
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  const auto expect_near = [&](const std::vector<value_t>& y, const char* what) {
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << what << " row " << r;
  };

  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));

  bk::native_spmv_csr(csr, x, y);
  expect_near(y, "csr");

  const bs::Coo coo = bs::csr_to_coo(csr);
  bk::native_spmv_coo(coo, x, y);
  expect_near(y, "coo");

  const bs::Ell ell = bs::csr_to_ell(csr);
  bk::native_spmv_ell(ell, x, y);
  expect_near(y, "ell");

  bk::native_spmv_ellr(bs::csr_to_ellr(csr), x, y);
  expect_near(y, "ellr");

  bk::native_spmv_hyb(bs::csr_to_hyb(csr), x, y);
  expect_near(y, "hyb");

  bk::native_spmv_bro_ell(bc::BroEll::compress(ell), x, y);
  expect_near(y, "bro_ell");

  bk::native_spmv_bro_coo(bc::BroCoo::compress(coo), x, y);
  expect_near(y, "bro_coo");

  bk::native_spmv_bro_hyb(bc::BroHyb::compress(csr), x, y);
  expect_near(y, "bro_hyb");
}

} // namespace

TEST(NativeKernels, PoissonGrid) { check_all(bs::generate_poisson2d(45, 37)); }

TEST(NativeKernels, RandomLocal) {
  bs::GenSpec spec;
  spec.rows = 3100;
  spec.cols = 3100;
  spec.mu = 11;
  spec.sigma = 4;
  spec.run = 3;
  spec.seed = 14;
  check_all(bs::generate(spec));
}

TEST(NativeKernels, ScatteredColumns) {
  bs::GenSpec spec;
  spec.rows = 900;
  spec.cols = 5000;
  spec.mu = 9;
  spec.sigma = 6;
  spec.local_prob = 0.1;
  spec.seed = 15;
  check_all(bs::generate(spec));
}

TEST(NativeKernels, EmptyRowsInterleaved) {
  bs::Coo coo;
  coo.rows = 700;
  coo.cols = 700;
  for (index_t r = 0; r < 700; r += 11) coo.push(r, (r * 7) % 700, 1.5);
  coo.canonicalize();
  check_all(bs::coo_to_csr(coo));
}

TEST(NativeKernels, SingleDenseRow) {
  bs::Coo coo;
  coo.rows = 400;
  coo.cols = 400;
  for (index_t c = 0; c < 400; ++c) coo.push(200, c, 0.5);
  for (index_t r = 0; r < 400; r += 3) coo.push(r, r, 2.0);
  coo.canonicalize();
  const bs::Csr csr = bs::coo_to_csr(coo);
  // ELL variants would expand 100x; exercise the COO/HYB family only.
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bk::native_spmv_bro_hyb(bc::BroHyb::compress(csr), x, y);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])));
}

TEST(NativeKernels, BroCooCarriesAcrossIntervalBoundaries) {
  // One long row spanning many intervals: every interval carries into the
  // same output row, stressing the carry-merge path.
  bs::Coo coo;
  coo.rows = 10;
  coo.cols = 9000;
  for (index_t c = 0; c < 9000; ++c) coo.push(4, c, 1.0);
  const bs::Csr csr = bs::coo_to_csr(coo);
  const auto x = random_x(csr.cols, 2);
  std::vector<value_t> y_ref(10);
  bs::spmv_csr_reference(csr, x, y_ref);
  std::vector<value_t> y(10);
  bk::native_spmv_bro_coo(bc::BroCoo::compress(bs::csr_to_coo(csr)), x, y);
  for (int r = 0; r < 10; ++r)
    ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)], 1e-9);
}

TEST(NativeKernels, CooEntryRangesAreRowCompleteAndCovering) {
  // A skewed matrix so entry-count balancing actually has to snap: a few
  // spike rows hold most of the non-zeros.
  bs::GenSpec spec;
  spec.rows = 400;
  spec.cols = 2000;
  spec.mu = 4;
  spec.spike_rows = 3;
  spec.spike_len = 800;
  spec.seed = 17;
  const bs::Coo coo = bs::csr_to_coo(bs::generate(spec));

  for (const int parts : {1, 2, 3, 8, 64}) {
    const auto ranges = bk::coo_thread_ranges(coo, parts);
    ASSERT_FALSE(ranges.empty());
    ASSERT_LE(ranges.size(), static_cast<std::size_t>(parts));
    // Disjoint, ordered, covering [0, nnz).
    ASSERT_EQ(ranges.front().lo, 0u);
    ASSERT_EQ(ranges.back().hi, coo.nnz());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      ASSERT_LT(ranges[i].lo, ranges[i].hi) << "empty part survived";
      if (i > 0) ASSERT_EQ(ranges[i].lo, ranges[i - 1].hi);
      // Row-complete: no row straddles a boundary.
      if (ranges[i].hi < coo.nnz())
        ASSERT_NE(coo.row_idx[ranges[i].hi - 1], coo.row_idx[ranges[i].hi])
            << "part " << i << " splits a row";
    }
    // coo_entry_range is the same snap rule, part by part.
    std::size_t cursor = 0;
    for (int p = 0; p < parts; ++p) {
      const bk::CooRange r =
          bk::coo_entry_range(coo, static_cast<std::size_t>(p),
                              static_cast<std::size_t>(parts));
      ASSERT_EQ(r.lo, cursor) << "part " << p;
      ASSERT_LE(r.hi, coo.nnz());
      cursor = r.hi;
    }
    ASSERT_EQ(cursor, coo.nnz());
  }
}

TEST(NativeKernels, CooEntryRangeSnapsWholeRowIntoOnePart) {
  // All entries in a single row: however many parts are requested, the snap
  // rule must hand the entire row to the first part and leave the rest empty.
  bs::Coo coo;
  coo.rows = 5;
  coo.cols = 1000;
  for (index_t c = 0; c < 1000; ++c) coo.push(2, c, 0.5);
  coo.canonicalize();
  const auto ranges = bk::coo_thread_ranges(coo, 8);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].lo, 0u);
  EXPECT_EQ(ranges[0].hi, coo.nnz());
  for (std::size_t p = 1; p < 8; ++p) {
    const bk::CooRange r = bk::coo_entry_range(coo, p, 8);
    EXPECT_EQ(r.lo, r.hi) << "part " << p << " should be empty";
  }
}

TEST(NativeKernels, HybParallelOverflowMatchesReference) {
  // Heavy spike rows push most entries into the HYB COO overflow; the
  // ranges overload must agree with the reference (and with the inline
  // split) while accumulating the overflow in parallel.
  bs::GenSpec spec;
  spec.rows = 600;
  spec.cols = 3000;
  spec.mu = 3;
  spec.spike_rows = 4;
  spec.spike_len = 1200;
  spec.seed = 23;
  const bs::Csr csr = bs::generate(spec);
  const bs::Hyb hyb = bs::csr_to_hyb(csr);
  ASSERT_GT(hyb.coo.nnz(), 0u);

  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  for (const int parts : {1, 4, 16}) {
    const auto ranges = bk::coo_thread_ranges(hyb.coo, parts);
    bk::native_spmv_hyb(hyb, ranges, x, y);
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << "parts " << parts << " row " << r;
  }
}
