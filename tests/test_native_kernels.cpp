// Native (OpenMP) kernel tests: agreement with the CSR reference across
// formats and matrix shapes, including the parallel BRO-COO carry handling.
#include <gtest/gtest.h>

#include <vector>

#include "kernels/native_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace bc = bro::core;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 55) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void check_all(const bs::Csr& csr) {
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  const auto expect_near = [&](const std::vector<value_t>& y, const char* what) {
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])))
          << what << " row " << r;
  };

  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));

  bk::native_spmv_csr(csr, x, y);
  expect_near(y, "csr");

  const bs::Coo coo = bs::csr_to_coo(csr);
  bk::native_spmv_coo(coo, x, y);
  expect_near(y, "coo");

  const bs::Ell ell = bs::csr_to_ell(csr);
  bk::native_spmv_ell(ell, x, y);
  expect_near(y, "ell");

  bk::native_spmv_ellr(bs::csr_to_ellr(csr), x, y);
  expect_near(y, "ellr");

  bk::native_spmv_hyb(bs::csr_to_hyb(csr), x, y);
  expect_near(y, "hyb");

  bk::native_spmv_bro_ell(bc::BroEll::compress(ell), x, y);
  expect_near(y, "bro_ell");

  bk::native_spmv_bro_coo(bc::BroCoo::compress(coo), x, y);
  expect_near(y, "bro_coo");

  bk::native_spmv_bro_hyb(bc::BroHyb::compress(csr), x, y);
  expect_near(y, "bro_hyb");
}

} // namespace

TEST(NativeKernels, PoissonGrid) { check_all(bs::generate_poisson2d(45, 37)); }

TEST(NativeKernels, RandomLocal) {
  bs::GenSpec spec;
  spec.rows = 3100;
  spec.cols = 3100;
  spec.mu = 11;
  spec.sigma = 4;
  spec.run = 3;
  spec.seed = 14;
  check_all(bs::generate(spec));
}

TEST(NativeKernels, ScatteredColumns) {
  bs::GenSpec spec;
  spec.rows = 900;
  spec.cols = 5000;
  spec.mu = 9;
  spec.sigma = 6;
  spec.local_prob = 0.1;
  spec.seed = 15;
  check_all(bs::generate(spec));
}

TEST(NativeKernels, EmptyRowsInterleaved) {
  bs::Coo coo;
  coo.rows = 700;
  coo.cols = 700;
  for (index_t r = 0; r < 700; r += 11) coo.push(r, (r * 7) % 700, 1.5);
  coo.canonicalize();
  check_all(bs::coo_to_csr(coo));
}

TEST(NativeKernels, SingleDenseRow) {
  bs::Coo coo;
  coo.rows = 400;
  coo.cols = 400;
  for (index_t c = 0; c < 400; ++c) coo.push(200, c, 0.5);
  for (index_t r = 0; r < 400; r += 3) coo.push(r, r, 2.0);
  coo.canonicalize();
  const bs::Csr csr = bs::coo_to_csr(coo);
  // ELL variants would expand 100x; exercise the COO/HYB family only.
  const auto x = random_x(csr.cols);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);

  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  bk::native_spmv_bro_hyb(bc::BroHyb::compress(csr), x, y);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r])));
}

TEST(NativeKernels, BroCooCarriesAcrossIntervalBoundaries) {
  // One long row spanning many intervals: every interval carries into the
  // same output row, stressing the carry-merge path.
  bs::Coo coo;
  coo.rows = 10;
  coo.cols = 9000;
  for (index_t c = 0; c < 9000; ++c) coo.push(4, c, 1.0);
  const bs::Csr csr = bs::coo_to_csr(coo);
  const auto x = random_x(csr.cols, 2);
  std::vector<value_t> y_ref(10);
  bs::spmv_csr_reference(csr, x, y_ref);
  std::vector<value_t> y(10);
  bk::native_spmv_bro_coo(bc::BroCoo::compress(bs::csr_to_coo(csr)), x, y);
  for (int r = 0; r < 10; ++r)
    ASSERT_NEAR(y[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)], 1e-9);
}
