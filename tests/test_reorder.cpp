// Tests for RCM, AMD and the permutation utilities.
#include <gtest/gtest.h>

#include <algorithm>

#include "reorder/amd.h"
#include "reorder/permutation.h"
#include "reorder/rcm.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace br = bro::reorder;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr scattered_symmetric(index_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  bs::Coo coo;
  coo.rows = n;
  coo.cols = n;
  for (index_t i = 0; i < n; ++i) coo.push(i, i, 4.0);
  for (index_t e = 0; e < n * 3; ++e) {
    const index_t a = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    const index_t b = static_cast<index_t>(rng.below(static_cast<std::uint64_t>(n)));
    if (a == b) continue;
    coo.push(a, b, -1.0);
    coo.push(b, a, -1.0);
  }
  coo.canonicalize();
  return bs::coo_to_csr(coo);
}

} // namespace

TEST(Permutation, InvertAndValidate) {
  const std::vector<index_t> perm = {2, 0, 3, 1};
  EXPECT_TRUE(br::is_permutation(perm));
  const auto inv = br::invert(perm);
  EXPECT_EQ(inv, (std::vector<index_t>{1, 3, 0, 2}));
  EXPECT_FALSE(br::is_permutation(std::vector<index_t>{0, 0, 1}));
  EXPECT_FALSE(br::is_permutation(std::vector<index_t>{0, 5, 1}));
}

TEST(Permutation, RowPermuteKeepsRowContents) {
  const bs::Csr csr = bs::generate_poisson2d(5, 5);
  const std::vector<index_t> perm = [&] {
    std::vector<index_t> p(static_cast<std::size_t>(csr.rows));
    for (index_t i = 0; i < csr.rows; ++i)
      p[static_cast<std::size_t>(i)] = csr.rows - 1 - i;
    return p;
  }();
  const bs::Csr out = br::permute_rows(csr, perm);
  for (index_t nr = 0; nr < csr.rows; ++nr) {
    const index_t r = perm[static_cast<std::size_t>(nr)];
    ASSERT_EQ(out.row_length(nr), csr.row_length(r));
    const auto a = out.row_cols(nr);
    const auto b = csr.row_cols(r);
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(Permutation, SymmetricPermutePreservesSpectrumStructure) {
  // P*A*P^T of a symmetric matrix stays symmetric and keeps row sums
  // (permutation-invariant functional).
  const bs::Csr csr = scattered_symmetric(60, 3);
  const auto rcm = br::rcm_order(csr);
  const bs::Csr out = br::permute_symmetric(csr, rcm);
  EXPECT_EQ(out.nnz(), csr.nnz());
  double sum_in = 0, sum_out = 0;
  for (const auto v : csr.vals) sum_in += v;
  for (const auto v : out.vals) sum_out += v;
  EXPECT_NEAR(sum_in, sum_out, 1e-9);
}

TEST(Rcm, ValidPermutation) {
  const bs::Csr csr = scattered_symmetric(200, 4);
  const auto perm = br::rcm_order(csr);
  EXPECT_EQ(perm.size(), 200u);
  EXPECT_TRUE(br::is_permutation(perm));
}

TEST(Rcm, ReducesBandwidthOfScatteredMatrix) {
  const bs::Csr csr = scattered_symmetric(400, 5);
  const auto perm = br::rcm_order(csr);
  const bs::Csr reordered = br::permute_symmetric(csr, perm);
  // A random symmetric matrix has bandwidth ~n; RCM should cut it down.
  EXPECT_LT(br::bandwidth(reordered), br::bandwidth(csr));
}

TEST(Rcm, GridBandwidthNearOptimal) {
  // A 2-D grid numbered row-major already has bandwidth nx; RCM should be
  // in the same ballpark after destroying the natural order.
  const bs::Csr grid = bs::generate_poisson2d(20, 20);
  // Scramble with a pseudo-random symmetric permutation first.
  std::vector<index_t> scramble(400);
  for (index_t i = 0; i < 400; ++i)
    scramble[static_cast<std::size_t>(i)] = (i * 181 + 7) % 400; // 181 coprime
  ASSERT_TRUE(br::is_permutation(scramble));
  const bs::Csr scrambled = br::permute_symmetric(grid, scramble);
  ASSERT_GT(br::bandwidth(scrambled), 100);
  const auto perm = br::rcm_order(scrambled);
  const bs::Csr restored = br::permute_symmetric(scrambled, perm);
  EXPECT_LT(br::bandwidth(restored), 60); // ~3x the optimal 20 is fine
}

TEST(Rcm, HandlesDisconnectedComponents) {
  bs::Coo coo;
  coo.rows = 30;
  coo.cols = 30;
  // Three disjoint paths of 10 vertices.
  for (int g = 0; g < 3; ++g)
    for (index_t i = 0; i < 9; ++i) {
      const index_t a = g * 10 + i;
      coo.push(a, a + 1, 1.0);
      coo.push(a + 1, a, 1.0);
    }
  coo.canonicalize();
  const auto perm = br::rcm_order(bs::coo_to_csr(coo));
  EXPECT_TRUE(br::is_permutation(perm));
}

TEST(Amd, ValidPermutation) {
  const bs::Csr csr = scattered_symmetric(300, 6);
  const auto perm = br::amd_order(csr);
  EXPECT_EQ(perm.size(), 300u);
  EXPECT_TRUE(br::is_permutation(perm));
}

TEST(Amd, EliminatesLeavesBeforeHubs) {
  // A star graph: AMD must order all leaves before the hub.
  bs::Coo coo;
  coo.rows = 50;
  coo.cols = 50;
  for (index_t i = 1; i < 50; ++i) {
    coo.push(0, i, 1.0);
    coo.push(i, 0, 1.0);
    coo.push(i, i, 2.0);
  }
  coo.push(0, 0, 2.0);
  coo.canonicalize();
  const auto perm = br::amd_order(bs::coo_to_csr(coo));
  ASSERT_TRUE(br::is_permutation(perm));
  // The hub must come after every leaf except possibly the final one (once
  // 48 leaves are gone the hub's degree ties with the last leaf's).
  const auto hub_pos =
      std::find(perm.begin(), perm.end(), 0) - perm.begin();
  EXPECT_GE(hub_pos, 48);
}

TEST(Amd, GridOrderingIsValidAndComplete) {
  const bs::Csr grid = bs::generate_poisson2d(16, 16);
  const auto perm = br::amd_order(grid);
  EXPECT_TRUE(br::is_permutation(perm));
}
