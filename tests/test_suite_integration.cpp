// Whole-suite integration: every one of the 30 Table 2 stand-ins (at small
// scale) must round-trip through its BRO format and produce SpMV results
// identical to the CSR reference, through both the native and the simulated
// kernel paths. Parameterized so each matrix is its own test case.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/matrix.h"
#include "kernels/native_spmv.h"
#include "kernels/sim_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/suite.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace gs = bro::sim;
using bro::index_t;
using bro::value_t;

namespace {

constexpr double kScale = 1.0 / 32.0;

class SuiteMatrix : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    const auto entry = bs::find_suite_entry(GetParam());
    ASSERT_TRUE(entry.has_value());
    entry_ = *entry;
    csr_ = bs::generate_suite_matrix(entry_, kScale);
    bro::Rng rng(13);
    x_.resize(static_cast<std::size_t>(csr_.cols));
    for (auto& v : x_) v = rng.uniform() * 2 - 1;
    y_ref_.resize(static_cast<std::size_t>(csr_.rows));
    bs::spmv_csr_reference(csr_, x_, y_ref_);
  }

  void expect_matches(const std::vector<value_t>& y, const char* what) const {
    ASSERT_EQ(y.size(), y_ref_.size());
    for (std::size_t r = 0; r < y.size(); ++r)
      ASSERT_NEAR(y[r], y_ref_[r], 1e-10 * (1.0 + std::abs(y_ref_[r])))
          << what << " row " << r;
  }

  bs::SuiteEntry entry_;
  bs::Csr csr_;
  std::vector<value_t> x_;
  std::vector<value_t> y_ref_;
};

} // namespace

TEST_P(SuiteMatrix, GeneratesValidStructure) {
  EXPECT_TRUE(csr_.is_valid());
  EXPECT_GT(csr_.nnz(), 0u);
}

TEST_P(SuiteMatrix, FacadeAutoFormatAgreesWithReference) {
  const auto m = bc::Matrix::from_csr(csr_);
  std::vector<value_t> y(static_cast<std::size_t>(csr_.rows));
  m.spmv(x_, y);
  expect_matches(y, bc::format_name(m.auto_format()));
}

TEST_P(SuiteMatrix, BroHybRoundTripAndNativeKernel) {
  const bc::BroHyb bro = bc::BroHyb::compress(csr_);
  EXPECT_EQ(bro.total_nnz(), csr_.nnz());
  std::vector<value_t> y(static_cast<std::size_t>(csr_.rows));
  bk::native_spmv_bro_hyb(bro, x_, y);
  expect_matches(y, "native BRO-HYB");
}

TEST_P(SuiteMatrix, SimulatedBroHybAgrees) {
  const bc::BroHyb bro = bc::BroHyb::compress(csr_);
  const auto res = bk::sim_spmv_bro_hyb(gs::tesla_k20(), bro, x_);
  expect_matches(res.y, "sim BRO-HYB");
  EXPECT_GT(res.time.gflops, 0.0);
}

TEST_P(SuiteMatrix, CompressionNeverExpandsIndexData) {
  const bc::BroHyb bro = bc::BroHyb::compress(csr_);
  EXPECT_LE(bro.compressed_index_bytes(), bro.original_index_bytes());
}

namespace {

std::vector<std::string> all_suite_names() {
  std::vector<std::string> names;
  for (const auto& e : bs::suite_entries()) names.push_back(e.name);
  return names;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllThirty, SuiteMatrix,
                         ::testing::ValuesIn(all_suite_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });
