// BRO-COO tests: interval structure, row-index round-trips, SpMV agreement
// and padding behaviour.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/bro_coo.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(n);
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_spmv_matches(const bs::Csr& csr, const bc::BroCoo& bro) {
  const auto x = random_vector(static_cast<std::size_t>(csr.cols), 3);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_bro(static_cast<std::size_t>(csr.rows), 0.0);
  bs::spmv_csr_reference(csr, x, y_ref);
  bro.spmv_accumulate(x, y_bro);
  for (index_t r = 0; r < csr.rows; ++r)
    EXPECT_NEAR(y_bro[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)],
                1e-12 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])));
}

} // namespace

TEST(BroCoo, RowDecodeRoundTrip) {
  const bs::Csr csr = bs::generate_poisson2d(30, 30);
  const bs::Coo coo = bs::csr_to_coo(csr);
  const bc::BroCoo bro = bc::BroCoo::compress(coo);
  const auto rows = bro.decode_rows();
  ASSERT_GE(rows.size(), coo.nnz());
  for (std::size_t i = 0; i < coo.nnz(); ++i) EXPECT_EQ(rows[i], coo.row_idx[i]);
  // Padding repeats the final row index.
  for (std::size_t i = coo.nnz(); i < rows.size(); ++i)
    EXPECT_EQ(rows[i], coo.row_idx.back());
}

TEST(BroCoo, PaddedValuesAreZero) {
  bs::Coo coo;
  coo.rows = 10;
  coo.cols = 10;
  for (index_t i = 0; i < 10; ++i) coo.push(i, i, 2.0);
  const bc::BroCoo bro = bc::BroCoo::compress(coo);
  EXPECT_EQ(bro.nnz(), 10u);
  EXPECT_GT(bro.padded_nnz(), bro.nnz()); // one interval minimum
  EXPECT_EQ(bro.padded_nnz() % (32 * 64), 0u);
  for (std::size_t i = bro.nnz(); i < bro.padded_nnz(); ++i)
    EXPECT_EQ(bro.vals()[i], 0.0);
  expect_spmv_matches(bs::coo_to_csr(coo), bro);
}

TEST(BroCoo, SingleBitWidthPerInterval) {
  // A diagonal matrix: lane deltas are all 32 (stride w down a lane) except
  // the first per lane; all intervals should pick a width of 6 bits.
  bs::Coo coo;
  coo.rows = 4096;
  coo.cols = 4096;
  for (index_t i = 0; i < 4096; ++i) coo.push(i, i, 1.0);
  const bc::BroCoo bro = bc::BroCoo::compress(coo);
  ASSERT_EQ(bro.intervals().size(), 2u); // 4096 / (32*64)
  for (const auto& iv : bro.intervals()) EXPECT_EQ(iv.bits, 6);
  expect_spmv_matches(bs::coo_to_csr(coo), bro);
}

TEST(BroCoo, CompressionSavesSpaceOnSortedStreams) {
  const bs::Csr csr = bs::generate_poisson2d(64, 64);
  const bc::BroCoo bro = bc::BroCoo::compress(bs::csr_to_coo(csr));
  EXPECT_LT(bro.compressed_row_bytes(), bro.original_row_bytes());
}

TEST(BroCoo, EmptyMatrix) {
  bs::Coo coo;
  coo.rows = 5;
  coo.cols = 5;
  const bc::BroCoo bro = bc::BroCoo::compress(coo);
  EXPECT_EQ(bro.nnz(), 0u);
  EXPECT_TRUE(bro.intervals().empty());
  std::vector<value_t> x(5, 1.0), y(5, 0.0);
  bro.spmv_accumulate(x, y);
  for (const auto v : y) EXPECT_EQ(v, 0.0);
}

TEST(BroCoo, RequiresCanonicalOrder) {
  bs::Coo coo;
  coo.rows = 3;
  coo.cols = 3;
  coo.push(2, 0, 1.0);
  coo.push(0, 0, 1.0); // out of order
  EXPECT_THROW(bc::BroCoo::compress(coo), std::runtime_error);
}

TEST(BroCoo, AccumulatesIntoExistingY) {
  bs::Coo coo;
  coo.rows = 2;
  coo.cols = 2;
  coo.push(0, 0, 3.0);
  const bc::BroCoo bro = bc::BroCoo::compress(coo);
  std::vector<value_t> x = {2.0, 0.0};
  std::vector<value_t> y = {10.0, 20.0};
  bro.spmv_accumulate(x, y);
  EXPECT_DOUBLE_EQ(y[0], 16.0);
  EXPECT_DOUBLE_EQ(y[1], 20.0);
}

// ---- parameterized sweep over interval shape and matrix structure ----

class BroCooProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BroCooProperty, RoundTripAndSpmv) {
  const auto [interval_cols, sym_len, kind] = GetParam();

  bs::Csr csr;
  switch (kind) {
    case 0: csr = bs::generate_poisson2d(25, 19); break;
    case 1: {
      bs::GenSpec spec;
      spec.rows = 1500;
      spec.cols = 1500;
      spec.mu = 5;
      spec.sigma = 4;
      spec.len_dist = bs::LenDist::kLogNormal;
      spec.seed = 12;
      csr = bs::generate(spec);
      break;
    }
    case 2: {
      // Long empty stretches: large row deltas between intervals.
      bs::Coo coo;
      coo.rows = 100000;
      coo.cols = 128;
      bro::Rng rng(4);
      index_t r = 0;
      for (int i = 0; i < 3000; ++i) {
        r += static_cast<index_t>(rng.below(60));
        if (r >= coo.rows) break;
        coo.push(r, static_cast<index_t>(rng.below(128)), 1.0);
      }
      coo.canonicalize();
      csr = bs::coo_to_csr(coo);
      break;
    }
    default: FAIL();
  }

  const bs::Coo coo = bs::csr_to_coo(csr);
  bc::BroCooOptions opts;
  opts.interval_cols = interval_cols;
  opts.sym_len = sym_len;
  const bc::BroCoo bro = bc::BroCoo::compress(coo, opts);

  const auto rows = bro.decode_rows();
  for (std::size_t i = 0; i < coo.nnz(); ++i)
    ASSERT_EQ(rows[i], coo.row_idx[i]) << "entry " << i;

  expect_spmv_matches(csr, bro);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroCooProperty,
    ::testing::Combine(::testing::Values(1, 8, 64),    // interval_cols
                       ::testing::Values(32, 64),      // sym_len
                       ::testing::Values(0, 1, 2)));   // matrix kind
