// Simulator-kernel tests: every format's sim kernel must produce the exact
// CSR-reference result, and the performance model must reproduce the paper's
// first-order orderings (compression -> less traffic -> more GFlop/s).
#include <gtest/gtest.h>

#include <vector>

#include "kernels/sim_spmv.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "util/rng.h"

namespace bk = bro::kernels;
namespace bs = bro::sparse;
namespace bc = bro::core;
namespace gs = bro::sim;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 77) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_matches_reference(const bs::Csr& csr,
                              const std::vector<value_t>& y,
                              const std::vector<value_t>& x) {
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  ASSERT_EQ(y.size(), y_ref.size());
  for (std::size_t r = 0; r < y.size(); ++r)
    EXPECT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r]))) << "row " << r;
}

bs::Csr test_matrix() {
  bs::GenSpec spec;
  spec.rows = 2000;
  spec.cols = 2000;
  spec.mu = 14;
  spec.sigma = 5;
  spec.run = 2;
  spec.seed = 3;
  return bs::generate(spec);
}

} // namespace

TEST(SimKernels, EllMatchesReference) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_ell(gs::tesla_k20(), bs::csr_to_ell(csr), x);
  expect_matches_reference(csr, res.y, x);
  EXPECT_GT(res.time.gflops, 0.0);
}

TEST(SimKernels, EllRMatchesReference) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_ellr(gs::tesla_k20(), bs::csr_to_ellr(csr), x);
  expect_matches_reference(csr, res.y, x);
}

TEST(SimKernels, BroEllMatchesReference) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  const auto res = bk::sim_spmv_bro_ell(gs::tesla_k20(), bro, x);
  expect_matches_reference(csr, res.y, x);
}

TEST(SimKernels, CooMatchesReference) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_coo(gs::tesla_c2070(), bs::csr_to_coo(csr), x);
  expect_matches_reference(csr, res.y, x);
  EXPECT_EQ(res.launches, 2); // main + carry reduction
}

TEST(SimKernels, BroCooMatchesReference) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto bro = bc::BroCoo::compress(bs::csr_to_coo(csr));
  const auto res = bk::sim_spmv_bro_coo(gs::tesla_k20(), bro, x);
  expect_matches_reference(csr, res.y, x);
}

TEST(SimKernels, HybMatchesReference) {
  bs::GenSpec spec;
  spec.rows = 1500;
  spec.cols = 1500;
  spec.mu = 7;
  spec.sigma = 3;
  spec.spike_rows = 6;
  spec.spike_len = 400;
  spec.seed = 8;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_hyb(gs::gtx680(), bs::csr_to_hyb(csr), x);
  expect_matches_reference(csr, res.y, x);
  EXPECT_GE(res.launches, 2);
}

TEST(SimKernels, BroHybMatchesReference) {
  bs::GenSpec spec;
  spec.rows = 1500;
  spec.cols = 1500;
  spec.mu = 7;
  spec.sigma = 3;
  spec.spike_rows = 6;
  spec.spike_len = 400;
  spec.seed = 9;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  const auto res = bk::sim_spmv_bro_hyb(gs::tesla_k20(),
                                        bc::BroHyb::compress(csr), x);
  expect_matches_reference(csr, res.y, x);
}

// ---- performance-model shape checks (the paper's headline effects) ----

TEST(SimKernels, BroEllMovesFewerBytesThanEll) {
  const bs::Csr csr = test_matrix();
  const auto x = random_x(csr.cols);
  const auto ell = bk::sim_spmv_ell(gs::tesla_k20(), bs::csr_to_ell(csr), x);
  const auto bro = bk::sim_spmv_bro_ell(
      gs::tesla_k20(), bc::BroEll::compress(bs::csr_to_ell(csr)), x);
  EXPECT_LT(bro.stats.dram_bytes(), ell.stats.dram_bytes());
  // And therefore higher effective arithmetic intensity (Fig. 5).
  EXPECT_GT(bro.time.eai, ell.time.eai);
}

TEST(SimKernels, BroEllFasterOnCompressibleMatrix) {
  // A banded FEM-like matrix compresses well -> BRO-ELL wins (Fig. 4).
  bs::GenSpec spec;
  spec.rows = 20000;
  spec.cols = 20000;
  spec.mu = 40;
  spec.sigma = 8;
  spec.run = 4;
  spec.local_prob = 0.97;
  spec.band_frac = 0.004;
  spec.seed = 10;
  const bs::Csr csr = bs::generate(spec);
  const auto x = random_x(csr.cols);
  for (const auto& dev : gs::all_devices()) {
    const auto ell = bk::sim_spmv_ell(dev, bs::csr_to_ell(csr), x);
    const auto bro = bk::sim_spmv_bro_ell(
        dev, bc::BroEll::compress(bs::csr_to_ell(csr)), x);
    EXPECT_GT(bro.time.gflops, ell.time.gflops) << dev.name;
  }
}

TEST(SimKernels, K20OutperformsC2070OnMemoryBoundSpmv) {
  // Fig. 3/4: the K20's higher bandwidth dominates for large matrices.
  const bs::Csr csr = bs::generate_poisson2d(300, 300);
  const auto x = random_x(csr.cols);
  const auto ell = bs::csr_to_ell(csr);
  const auto slow = bk::sim_spmv_ell(gs::tesla_c2070(), ell, x);
  const auto fast = bk::sim_spmv_ell(gs::tesla_k20(), ell, x);
  EXPECT_GT(fast.time.gflops, slow.time.gflops);
}

TEST(SimKernels, SmallMatrixUnderutilizesWideGpu) {
  // The e40r5000 effect (Fig. 6): too few rows to fill the device lowers
  // achieved bandwidth utilization vs a large matrix on the same GPU.
  const auto entry_small = bs::generate_poisson2d(40, 40);   // 1.6k rows
  const auto entry_large = bs::generate_poisson2d(400, 400); // 160k rows
  const auto dev = gs::tesla_k20();
  const auto small =
      bk::sim_spmv_ell(dev, bs::csr_to_ell(entry_small), random_x(entry_small.cols));
  const auto large =
      bk::sim_spmv_ell(dev, bs::csr_to_ell(entry_large), random_x(entry_large.cols));
  EXPECT_LT(small.time.bw_utilization, large.time.bw_utilization);
}

TEST(SimKernels, CombineAddsTimesAndTraffic) {
  const bs::Csr csr = bs::generate_poisson2d(30, 30);
  const auto x = random_x(csr.cols);
  auto a = bk::sim_spmv_ell(gs::tesla_k20(), bs::csr_to_ell(csr), x);
  const auto b = bk::sim_spmv_ell(gs::tesla_k20(), bs::csr_to_ell(csr), x);
  const double t_a = a.time.seconds;
  const auto c = bk::combine(std::move(a), b);
  EXPECT_NEAR(c.time.seconds, t_a + b.time.seconds, 1e-15);
  EXPECT_EQ(c.stats.dram_bytes(),
            2 * b.stats.dram_bytes());
  EXPECT_EQ(c.launches, 2);
}
