// BRO-ELL tests: the Fig. 1 pipeline on the paper's example matrix,
// compress/decompress round-trips, SpMV agreement with the CSR reference,
// and parameterized sweeps over slice height / sym_len / structure.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/bro_ell.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

bs::Csr paper_matrix_csr() {
  bs::Coo coo;
  coo.rows = 4;
  coo.cols = 5;
  const index_t r[] = {0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 3, 3};
  const index_t c[] = {0, 2, 0, 1, 2, 3, 4, 1, 2, 4, 3, 4};
  const value_t v[] = {3, 2, 2, 6, 5, 4, 1, 1, 9, 7, 8, 3};
  for (int i = 0; i < 12; ++i) coo.push(r[i], c[i], v[i]);
  return bs::coo_to_csr(coo);
}

std::vector<value_t> random_vector(std::size_t n, std::uint64_t seed) {
  bro::Rng rng(seed);
  std::vector<value_t> x(n);
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_spmv_matches(const bs::Csr& csr, const bc::BroEll& bro,
                         std::uint64_t seed = 99) {
  const auto x = random_vector(static_cast<std::size_t>(csr.cols), seed);
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  std::vector<value_t> y_bro(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  bro.spmv(x, y_bro);
  for (index_t r = 0; r < csr.rows; ++r)
    EXPECT_NEAR(y_bro[static_cast<std::size_t>(r)],
                y_ref[static_cast<std::size_t>(r)],
                1e-12 * (1.0 + std::abs(y_ref[static_cast<std::size_t>(r)])))
        << "row " << r;
}

} // namespace

TEST(BroEll, PaperExampleSliceStructure) {
  // h = 2 as in Fig. 1: two slices of two rows each.
  const bs::Ell ell = bs::csr_to_ell(paper_matrix_csr());
  bc::BroEllOptions opts;
  opts.slice_height = 2;
  const bc::BroEll bro = bc::BroEll::compress(ell, opts);

  ASSERT_EQ(bro.slices().size(), 2u);
  const auto& s0 = bro.slices()[0];
  const auto& s1 = bro.slices()[1];
  // Slice 0 holds rows {0,1}: lengths 2 and 5 -> num_col = 5.
  EXPECT_EQ(s0.num_col, 5);
  // Slice 1 holds rows {2,3}: lengths 3 and 2 -> num_col = 3.
  EXPECT_EQ(s1.num_col, 3);

  // Fig. 1 delta table for slice 0 (1-based gaps): row0 = [1,2,0,0,0],
  // row1 = [1,1,1,1,1] -> per-column max bit widths [1,2,1,1,1].
  EXPECT_EQ(s0.bit_alloc,
            (std::vector<std::uint8_t>{1, 2, 1, 1, 1}));
  // Slice 1: row2 = [2,1,2], row3 = [4,1,0] -> widths [3,1,2].
  EXPECT_EQ(s1.bit_alloc, (std::vector<std::uint8_t>{3, 1, 2}));
}

TEST(BroEll, PaperExampleRoundTrip) {
  const bs::Csr csr = paper_matrix_csr();
  const bs::Ell ell = bs::csr_to_ell(csr);
  for (const int h : {1, 2, 3, 4, 256}) {
    bc::BroEllOptions opts;
    opts.slice_height = h;
    const bc::BroEll bro = bc::BroEll::compress(ell, opts);
    const bs::Ell back = bro.decompress();
    EXPECT_EQ(back.col_idx, ell.col_idx) << "h=" << h;
    EXPECT_EQ(back.vals, ell.vals) << "h=" << h;
  }
}

TEST(BroEll, PaperExampleSpmv) {
  const bs::Csr csr = paper_matrix_csr();
  bc::BroEllOptions opts;
  opts.slice_height = 2;
  const bc::BroEll bro = bc::BroEll::compress(bs::csr_to_ell(csr), opts);
  const std::vector<value_t> x = {1, 2, 3, 4, 5};
  std::vector<value_t> y(4);
  bro.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 9);
  EXPECT_DOUBLE_EQ(y[1], 50);
  EXPECT_DOUBLE_EQ(y[2], 64);
  EXPECT_DOUBLE_EQ(y[3], 47);
}

TEST(BroEll, DecodeRowMatchesEll) {
  const bs::Csr csr = bs::generate_poisson2d(13, 17);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const bc::BroEll bro = bc::BroEll::compress(ell);
  for (index_t r = 0; r < csr.rows; ++r) {
    const auto cols = bro.decode_row(r);
    ASSERT_EQ(static_cast<index_t>(cols.size()), csr.row_length(r));
    const auto expect = csr.row_cols(r);
    for (std::size_t j = 0; j < cols.size(); ++j) EXPECT_EQ(cols[j], expect[j]);
  }
}

TEST(BroEll, CompressionShrinksIndexData) {
  const bs::Csr csr = bs::generate_poisson2d(64, 64);
  const bc::BroEll bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  EXPECT_LT(bro.compressed_index_bytes(), bro.original_index_bytes() / 2);
}

TEST(BroEll, LastColumnBitWidthCanUseFullRange) {
  // A delta of nearly 2^31 must survive the packer (32-bit width values).
  bs::Coo coo;
  coo.rows = 1;
  coo.cols = 2'000'000'000;
  coo.push(0, 0, 1.0);
  coo.push(0, 1'999'999'999, 2.0);
  const bs::Ell ell = bs::csr_to_ell(bs::coo_to_csr(coo));
  const bc::BroEll bro = bc::BroEll::compress(ell);
  EXPECT_EQ(bro.decode_row(0), (std::vector<index_t>{0, 1'999'999'999}));
}

TEST(BroEll, EmptyMatrix) {
  bs::Ell ell;
  ell.rows = 0;
  ell.cols = 0;
  ell.width = 0;
  const bc::BroEll bro = bc::BroEll::compress(ell);
  EXPECT_TRUE(bro.slices().empty());
  EXPECT_EQ(bro.compressed_index_bytes(), 0u);
}

TEST(BroEll, MatrixWithEmptyRows) {
  bs::Coo coo;
  coo.rows = 600; // spans three slices of 256 with many all-zero rows
  coo.cols = 600;
  for (index_t r = 0; r < 600; r += 7) coo.push(r, r, 1.0);
  const bs::Csr csr = bs::coo_to_csr(coo);
  const bc::BroEll bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  expect_spmv_matches(csr, bro);
}

TEST(BroEll, EmptySliceAtTail) {
  // Rows 256..511 have no entries at all: slice 1 has num_col = 0.
  bs::Coo coo;
  coo.rows = 512;
  coo.cols = 512;
  for (index_t r = 0; r < 256; ++r) coo.push(r, r, 1.0);
  const bs::Csr csr = bs::coo_to_csr(coo);
  const bc::BroEll bro = bc::BroEll::compress(bs::csr_to_ell(csr));
  ASSERT_EQ(bro.slices().size(), 2u);
  EXPECT_EQ(bro.slices()[1].num_col, 0);
  expect_spmv_matches(csr, bro);
}

TEST(BroEll, RejectsBadOptions) {
  const bs::Ell ell = bs::csr_to_ell(paper_matrix_csr());
  bc::BroEllOptions opts;
  opts.sym_len = 16;
  EXPECT_THROW(bc::BroEll::compress(ell, opts), std::runtime_error);
  opts.sym_len = 32;
  opts.slice_height = 0;
  EXPECT_THROW(bc::BroEll::compress(ell, opts), std::runtime_error);
}

// ---- parameterized property sweep: (slice_height, sym_len, matrix kind) ----

class BroEllProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BroEllProperty, RoundTripAndSpmv) {
  const auto [h, sym_len, kind] = GetParam();

  bs::Csr csr;
  switch (kind) {
    case 0: csr = bs::generate_poisson2d(20, 21); break;
    case 1: {
      bs::GenSpec spec;
      spec.rows = 777;
      spec.cols = 900;
      spec.mu = 12;
      spec.sigma = 6;
      spec.local_prob = 0.5;
      spec.seed = 5;
      csr = bs::generate(spec);
      break;
    }
    case 2: {
      bs::GenSpec spec;
      spec.rows = 300;
      spec.cols = 64;
      spec.mu = 30;
      spec.sigma = 15;
      spec.local_prob = 0.0; // dense-ish rows, wild deltas
      spec.seed = 6;
      csr = bs::generate(spec);
      break;
    }
    case 3: csr = bs::generate_dense(65, 33); break;
    default: FAIL();
  }

  const bs::Ell ell = bs::csr_to_ell(csr);
  bc::BroEllOptions opts;
  opts.slice_height = h;
  opts.sym_len = sym_len;
  const bc::BroEll bro = bc::BroEll::compress(ell, opts);

  // Round trip is exact.
  const bs::Ell back = bro.decompress();
  EXPECT_EQ(back.col_idx, ell.col_idx);

  // SpMV agrees with the reference.
  expect_spmv_matches(csr, bro, 17);

  // Accounting invariant: compressed stream bits match the bit allocation.
  for (const auto& s : bro.slices()) {
    std::size_t row_bits = 0;
    for (const auto b : s.bit_alloc) row_bits += b;
    row_bits += static_cast<std::size_t>(s.pad_bits);
    if (s.num_col > 0) {
      EXPECT_EQ(row_bits % static_cast<std::size_t>(sym_len), 0u);
      EXPECT_EQ(s.stream.symbols_per_row(),
                row_bits / static_cast<std::size_t>(sym_len));
      EXPECT_EQ(s.stream.height(), static_cast<std::size_t>(s.height));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BroEllProperty,
    ::testing::Combine(::testing::Values(1, 32, 256, 1000), // slice height
                       ::testing::Values(32, 64),           // sym_len
                       ::testing::Values(0, 1, 2, 3)));     // matrix kind
