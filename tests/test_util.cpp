// Tests for the util substrate: RNG determinism and distribution sanity,
// table rendering, env parsing, error macros and the timer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/env.h"
#include "util/error.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using bro::Rng;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(17), 17u);
  // range() inclusive bounds.
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Table, RendersAlignedColumns) {
  bro::Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| yy | 22          |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongCellCount) {
  bro::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(bro::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(bro::Table::fmt(2.0, 0), "2");
  EXPECT_EQ(bro::Table::pct(0.1234, 1), "12.3%");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("BRO_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 2.5);
  ::setenv("BRO_TEST_ENV_D", "junk", 1);
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 1.0);
  ::unsetenv("BRO_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 1.0);

  ::setenv("BRO_TEST_ENV_L", "42", 1);
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 42);
  ::unsetenv("BRO_TEST_ENV_L");
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 7);
}

TEST(Env, RejectsTrailingGarbageAndOverflow) {
  // strtod/strtol happily parse a numeric prefix; the wrappers must not —
  // "3abc" as 3 silently misconfigures a bench.
  ::setenv("BRO_TEST_ENV_D", "1.5x", 1);
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 9.0), 9.0);
  ::setenv("BRO_TEST_ENV_D", "1e999", 1); // ERANGE overflow
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 9.0), 9.0);
  ::setenv("BRO_TEST_ENV_D", " 2.5 ", 1); // trailing whitespace is fine
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 9.0), 2.5);
  ::unsetenv("BRO_TEST_ENV_D");

  ::setenv("BRO_TEST_ENV_L", "3abc", 1);
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 7);
  ::setenv("BRO_TEST_ENV_L", "999999999999999999999999", 1); // ERANGE
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 7);
  ::setenv("BRO_TEST_ENV_L", "42 ", 1);
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 42);
  ::unsetenv("BRO_TEST_ENV_L");
}

TEST(Error, CheckMacrosThrowWithContext) {
  try {
    BRO_CHECK_MSG(1 == 2, "context " << 99);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("context 99"), std::string::npos);
  }
  EXPECT_NO_THROW(BRO_CHECK(2 == 2));
}

TEST(Timer, MeasuresElapsedTime) {
  bro::Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Histogram, LinearBucketsAndPercentiles) {
  auto h = bro::Histogram::linear(0.0, 10.0, 10); // bounds 1, 2, ..., 10
  for (int v = 1; v <= 100; ++v) h.add(v * 0.1);  // 0.1 .. 10.0, uniform
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 5.05, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // Uniform over (0, 10] with unit buckets: p50 lands in the (4, 5] bucket.
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(Histogram, OverflowReportsObservedMax) {
  auto h = bro::Histogram::linear(0.0, 1.0, 4);
  h.add(0.5);
  h.add(123.0); // overflow bucket
  EXPECT_EQ(h.counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(99), 123.0);
}

TEST(Histogram, ExponentialBoundsCoverRange) {
  auto h = bro::Histogram::exponential(1e-6, 1.0, 10.0);
  const auto& b = h.upper_bounds();
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_GE(b.back(), 1.0);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
}

TEST(Histogram, EmptyIsZero) {
  auto h = bro::Histogram::linear(0.0, 1.0, 2);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, MergeCombinesCounts) {
  auto a = bro::Histogram::linear(0.0, 10.0, 10);
  auto b = bro::Histogram::linear(0.0, 10.0, 10);
  a.add(1.5);
  b.add(7.5);
  b.add(20.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.5);
  // Mismatched shapes are rejected loudly.
  auto c = bro::Histogram::linear(0.0, 5.0, 10);
  EXPECT_THROW(a.merge(c), std::runtime_error);
}

TEST(Histogram, SummaryMentionsPercentiles) {
  auto h = bro::Histogram::exponential(1e-6, 10.0, 2.0);
  h.add(0.001);
  h.add(0.002);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p95="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("max="), std::string::npos);
}
