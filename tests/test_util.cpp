// Tests for the util substrate: RNG determinism and distribution sanity,
// table rendering, env parsing, error macros and the timer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "util/env.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

using bro::Rng;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(17), 17u);
  // range() inclusive bounds.
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Table, RendersAlignedColumns) {
  bro::Table t({"a", "long-header"});
  t.add_row({"x", "1"});
  t.add_row({"yy", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | long-header |"), std::string::npos);
  EXPECT_NE(out.find("| yy | 22          |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongCellCount) {
  bro::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(bro::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(bro::Table::fmt(2.0, 0), "2");
  EXPECT_EQ(bro::Table::pct(0.1234, 1), "12.3%");
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("BRO_TEST_ENV_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 2.5);
  ::setenv("BRO_TEST_ENV_D", "junk", 1);
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 1.0);
  ::unsetenv("BRO_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(bro::env_double("BRO_TEST_ENV_D", 1.0), 1.0);

  ::setenv("BRO_TEST_ENV_L", "42", 1);
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 42);
  ::unsetenv("BRO_TEST_ENV_L");
  EXPECT_EQ(bro::env_long("BRO_TEST_ENV_L", 7), 7);
}

TEST(Error, CheckMacrosThrowWithContext) {
  try {
    BRO_CHECK_MSG(1 == 2, "context " << 99);
    FAIL() << "should have thrown";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("context 99"), std::string::npos);
  }
  EXPECT_NO_THROW(BRO_CHECK(2 == 2));
}

TEST(Timer, MeasuresElapsedTime) {
  bro::Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}
