// Tests for the synthetic matrix generators and the Table 2 stand-in suite.
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/matgen/generators.h"
#include "sparse/matgen/suite.h"
#include "sparse/stats.h"

namespace bs = bro::sparse;
using bro::index_t;

TEST(Generators, DenseMatrix) {
  const bs::Csr d = bs::generate_dense(10, 12);
  EXPECT_TRUE(d.is_valid());
  EXPECT_EQ(d.nnz(), 120u);
  EXPECT_EQ(d.max_row_length(), 12);
}

TEST(Generators, Grid2dDegrees) {
  const bs::Csr g = bs::generate_grid2d(10, 10);
  EXPECT_TRUE(g.is_valid());
  const bs::MatrixStats s = bs::compute_stats(g);
  // Interior sites have 4 neighbours; boundary fewer.
  EXPECT_EQ(s.max_row_length, 4);
  EXPECT_EQ(s.min_row_length, 2);
  EXPECT_NEAR(s.mean_row_length, 3.6, 0.01); // 2*(10*9)*2 / 100
}

TEST(Generators, Poisson2dSymmetricDiagonallyDominant) {
  const bs::Csr p = bs::generate_poisson2d(8, 8);
  EXPECT_TRUE(p.is_valid());
  for (index_t r = 0; r < p.rows; ++r) {
    double diag = 0, off = 0;
    for (index_t q = p.row_ptr[r]; q < p.row_ptr[r + 1]; ++q) {
      if (p.col_idx[q] == r) diag = p.vals[q];
      else off += std::abs(p.vals[q]);
    }
    EXPECT_GE(diag, off);
  }
}

TEST(Generators, Lattice4dConstantRows) {
  const bs::Csr q = bs::generate_lattice4d(4, 39, 13);
  EXPECT_TRUE(q.is_valid());
  const bs::MatrixStats s = bs::compute_stats(q);
  EXPECT_EQ(q.rows, 256);
  EXPECT_EQ(s.max_row_length, 39);
  EXPECT_EQ(s.min_row_length, 39);
  EXPECT_NEAR(s.stddev_row_length, 0.0, 1e-12);
}

TEST(Generators, GenSpecHitsTargetDistribution) {
  bs::GenSpec spec;
  spec.rows = 4000;
  spec.cols = 4000;
  spec.mu = 30;
  spec.sigma = 6;
  spec.run = 3;
  spec.len_corr = 1; // i.i.d. lengths: the marginal distribution is exact
  const bs::Csr m = bs::generate(spec);
  EXPECT_TRUE(m.is_valid());
  const bs::MatrixStats s = bs::compute_stats(m);
  EXPECT_NEAR(s.mean_row_length, 30, 2.0);
  EXPECT_NEAR(s.stddev_row_length, 6, 2.0);
}

TEST(Generators, RowLengthsAreSpatiallyCorrelated) {
  bs::GenSpec spec;
  spec.rows = 8000;
  spec.cols = 8000;
  spec.mu = 20;
  spec.sigma = 8;
  spec.len_corr = 512;
  const bs::Csr m = bs::generate(spec);
  // Mean absolute difference between adjacent rows must be far below the
  // i.i.d. expectation (~sigma).
  double adj = 0;
  for (index_t r = 1; r < m.rows; ++r)
    adj += std::abs(double(m.row_length(r)) - double(m.row_length(r - 1)));
  adj /= (m.rows - 1);
  EXPECT_LT(adj, 4.0);
}

TEST(Generators, SpikesInflateSigma) {
  bs::GenSpec spec;
  spec.rows = 2000;
  spec.cols = 2000;
  spec.mu = 8;
  spec.sigma = 2;
  spec.spike_rows = 5;
  spec.spike_len = 1500;
  const bs::Csr m = bs::generate(spec);
  const bs::MatrixStats s = bs::compute_stats(m);
  EXPECT_GT(s.stddev_row_length, 20.0);
  EXPECT_GT(s.max_row_length, 700);
}

TEST(Generators, DiagDominantFixup) {
  bs::GenSpec spec;
  spec.rows = 300;
  spec.cols = 300;
  spec.mu = 6;
  spec.sigma = 2;
  bs::Csr m = bs::generate(spec);
  bs::make_diag_dominant(m);
  EXPECT_TRUE(m.is_valid());
  for (index_t r = 0; r < m.rows; ++r) {
    double diag = 0, off = 0;
    bool has_diag = false;
    for (index_t q = m.row_ptr[r]; q < m.row_ptr[r + 1]; ++q) {
      if (m.col_idx[q] == r) {
        diag = m.vals[q];
        has_diag = true;
      } else {
        off += std::abs(m.vals[q]);
      }
    }
    EXPECT_TRUE(has_diag);
    EXPECT_GT(diag, off);
  }
}

TEST(Suite, HasAllThirtyMatrices) {
  // 30 paper matrices plus the Test Set 3 truss-FEM workload.
  EXPECT_EQ(bs::suite_entries().size(), 34u);
  EXPECT_EQ(bs::suite_test_set(1).size(), 16u);
  EXPECT_EQ(bs::suite_test_set(2).size(), 14u);
  EXPECT_EQ(bs::suite_test_set(3).size(), 4u);
}

TEST(Suite, LookupByName) {
  EXPECT_TRUE(bs::find_suite_entry("cant").has_value());
  EXPECT_TRUE(bs::find_suite_entry("webbase-1M").has_value());
  EXPECT_FALSE(bs::find_suite_entry("not-a-matrix").has_value());
  EXPECT_EQ(bs::find_suite_entry("qcd5_4")->paper_mu, 39.0);
}

TEST(Suite, GeneratedStatsTrackPaper) {
  // At 1/16 scale, mean row length should still track the paper's μ within
  // a loose tolerance for several representative structure classes.
  for (const char* name : {"cant", "epb3", "stomach", "scircuit"}) {
    const auto entry = bs::find_suite_entry(name);
    ASSERT_TRUE(entry.has_value());
    const bs::Csr m = bs::generate_suite_matrix(*entry, 1.0 / 16.0);
    EXPECT_TRUE(m.is_valid()) << name;
    const bs::MatrixStats s = bs::compute_stats(m);
    EXPECT_NEAR(s.mean_row_length, entry->paper_mu, entry->paper_mu * 0.3)
        << name;
  }
}

TEST(Suite, ConstantRowMatrices) {
  const auto qcd = bs::find_suite_entry("qcd5_4");
  const bs::Csr m = bs::generate_suite_matrix(*qcd, 1.0 / 16.0);
  const bs::MatrixStats s = bs::compute_stats(m);
  EXPECT_NEAR(s.stddev_row_length, 0.0, 1e-9);
  EXPECT_EQ(s.max_row_length, 39);
}

TEST(Suite, RectangularRail) {
  const auto rail = bs::find_suite_entry("rail4284");
  const bs::Csr m = bs::generate_suite_matrix(*rail, 1.0 / 16.0);
  EXPECT_TRUE(m.is_valid());
  EXPECT_LT(m.rows, m.cols / 4); // strongly rectangular, like the original
}
