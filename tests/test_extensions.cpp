// Tests for the extension formats: Sliced-ELLPACK (related-work baseline /
// BRO-ELL ablation), BRO-ELL-T (multi-thread-per-row) and BRO-ELL-VC
// (value compression) — the paper's §6 future-work items.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/bro_ell_values.h"
#include "core/bro_ell_vector.h"
#include "core/sliced_ell.h"
#include "sparse/convert.h"
#include "sparse/matgen/generators.h"
#include "util/rng.h"

namespace bc = bro::core;
namespace bs = bro::sparse;
using bro::index_t;
using bro::value_t;

namespace {

std::vector<value_t> random_x(index_t n, std::uint64_t seed = 19) {
  bro::Rng rng(seed);
  std::vector<value_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform() * 2 - 1;
  return x;
}

void expect_matches(const bs::Csr& csr, const std::vector<value_t>& y,
                    const std::vector<value_t>& x) {
  std::vector<value_t> y_ref(static_cast<std::size_t>(csr.rows));
  bs::spmv_csr_reference(csr, x, y_ref);
  for (std::size_t r = 0; r < y.size(); ++r)
    ASSERT_NEAR(y[r], y_ref[r], 1e-11 * (1.0 + std::abs(y_ref[r]))) << r;
}

bs::Csr fem_like(index_t rows, std::uint64_t seed) {
  bs::GenSpec spec;
  spec.rows = rows;
  spec.cols = rows;
  spec.mu = 40;
  spec.sigma = 9;
  spec.run = 4;
  spec.aligned_blocks = true;
  spec.band_frac = 0.01;
  spec.seed = seed;
  return bs::generate(spec);
}

} // namespace

// ---------- Sliced-ELLPACK ----------

TEST(SlicedEll, SpmvMatchesReference) {
  const bs::Csr csr = fem_like(1500, 1);
  const auto x = random_x(csr.cols);
  const auto sliced = bc::SlicedEll::build(bs::csr_to_ell(csr), 128);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  sliced.spmv(x, y);
  expect_matches(csr, y, x);
}

TEST(SlicedEll, StoresLessThanEllOnVariedRows) {
  bs::GenSpec spec;
  spec.rows = 4096;
  spec.cols = 4096;
  spec.mu = 12;
  spec.sigma = 8;
  spec.len_corr = 256; // row lengths vary smoothly -> slices adapt
  spec.seed = 3;
  const bs::Csr csr = bs::generate(spec);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const auto sliced = bc::SlicedEll::build(ell, 256);
  EXPECT_LT(sliced.index_bytes(), ell.index_bytes());
}

TEST(SlicedEll, SliceWidthsAreLocalMaxima) {
  const bs::Csr csr = fem_like(700, 2);
  const auto sliced = bc::SlicedEll::build(bs::csr_to_ell(csr), 100);
  ASSERT_EQ(sliced.slices().size(), 7u);
  for (const auto& s : sliced.slices()) {
    index_t max_len = 0;
    for (index_t t = 0; t < s.height; ++t)
      max_len = std::max(max_len, csr.row_length(s.first_row + t));
    EXPECT_EQ(s.num_col, max_len);
  }
}

TEST(SlicedEll, EmptyMatrix) {
  bs::Ell ell;
  const auto sliced = bc::SlicedEll::build(ell);
  EXPECT_TRUE(sliced.slices().empty());
  EXPECT_EQ(sliced.index_bytes(), 0u);
}

// ---------- BRO-ELL-T (multiple threads per row) ----------

class BroEllVectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(BroEllVectorProperty, SpmvMatchesReference) {
  const int t = GetParam();
  const bs::Csr csr = fem_like(900, 4);
  const auto x = random_x(csr.cols);
  const auto vec = bc::BroEllVector::compress(bs::csr_to_ell(csr), t);
  EXPECT_EQ(vec.threads_per_row(), t);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  vec.spmv(x, y);
  expect_matches(csr, y, x);
}

INSTANTIATE_TEST_SUITE_P(ThreadsPerRow, BroEllVectorProperty,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(BroEllVector, RejectsBadThreadCounts) {
  const bs::Ell ell = bs::csr_to_ell(fem_like(100, 5));
  EXPECT_THROW(bc::BroEllVector::compress(ell, 3), std::runtime_error);
  EXPECT_THROW(bc::BroEllVector::compress(ell, 0), std::runtime_error);
  EXPECT_THROW(bc::BroEllVector::compress(ell, 64), std::runtime_error);
}

TEST(BroEllVector, OneThreadEqualsPlainBroEll) {
  const bs::Ell ell = bs::csr_to_ell(fem_like(600, 6));
  const auto plain = bc::BroEll::compress(ell);
  const auto vec = bc::BroEllVector::compress(ell, 1);
  EXPECT_EQ(vec.compressed_index_bytes(), plain.compressed_index_bytes());
}

TEST(BroEllVector, SplittingCostsCompression) {
  // Stride-T gaps are larger than stride-1 gaps: compression must not
  // improve when rows are split.
  const bs::Ell ell = bs::csr_to_ell(fem_like(600, 7));
  const auto t1 = bc::BroEllVector::compress(ell, 1);
  const auto t8 = bc::BroEllVector::compress(ell, 8);
  EXPECT_GE(t8.compressed_index_bytes(), t1.compressed_index_bytes());
}

// ---------- BRO-ELL-VC (value compression) ----------

TEST(BroEllValues, StencilValuesCompress) {
  // Poisson stencil: only two distinct values (4 and -1).
  const bs::Csr csr = bs::generate_poisson2d(40, 40);
  const auto vc = bc::BroEllValues::compress(bs::csr_to_ell(csr));
  EXPECT_DOUBLE_EQ(vc.dict_slice_fraction(), 1.0);
  EXPECT_LT(vc.compressed_value_bytes(), vc.original_value_bytes() / 4);

  const auto x = random_x(csr.cols);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  vc.spmv(x, y);
  expect_matches(csr, y, x);
}

TEST(BroEllValues, RandomValuesFallBackToRaw) {
  bc::BroEllValuesOptions opts;
  opts.max_dict = 64;
  const bs::Csr csr = fem_like(600, 8); // values are uniform random
  const auto vc = bc::BroEllValues::compress(bs::csr_to_ell(csr), opts);
  EXPECT_DOUBLE_EQ(vc.dict_slice_fraction(), 0.0);

  const auto x = random_x(csr.cols);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  vc.spmv(x, y);
  expect_matches(csr, y, x);
}

TEST(BroEllValues, MixedSlices) {
  // First 256 rows carry constant values, the rest random: one dict slice,
  // one raw slice.
  bs::Coo coo;
  coo.rows = 512;
  coo.cols = 512;
  bro::Rng rng(10);
  for (index_t r = 0; r < 512; ++r)
    for (index_t j = 0; j < 6; ++j) {
      const index_t c = (r + j * 7) % 512;
      coo.push(r, c, r < 256 ? 1.5 : rng.uniform());
    }
  coo.canonicalize();
  const bs::Csr csr = bs::coo_to_csr(coo);
  bc::BroEllValuesOptions opts;
  opts.max_dict = 16;
  const auto vc = bc::BroEllValues::compress(bs::csr_to_ell(csr), opts);
  ASSERT_EQ(vc.value_slices().size(), 2u);
  EXPECT_FALSE(vc.value_slices()[0].dict.empty());
  EXPECT_TRUE(vc.value_slices()[1].dict.empty());

  const auto x = random_x(csr.cols);
  std::vector<value_t> y(static_cast<std::size_t>(csr.rows));
  vc.spmv(x, y);
  expect_matches(csr, y, x);
}

TEST(BroEllValues, CombinedSavingsBeatIndexOnly) {
  const bs::Csr csr = bs::generate_poisson2d(50, 50);
  const bs::Ell ell = bs::csr_to_ell(csr);
  const auto plain = bc::BroEll::compress(ell);
  const auto vc = bc::BroEllValues::compress(ell);
  const double eta_index =
      1.0 - double(plain.compressed_index_bytes() +
                   plain.original_index_bytes() * 2) / // + raw vals (8B vs 4B idx)
                double(plain.original_index_bytes() * 3);
  const double eta_total = 1.0 - double(vc.compressed_total_bytes()) /
                                     double(vc.original_total_bytes());
  EXPECT_GT(eta_total, eta_index);
}
